// Campaign checkpoint artifacts.
//
// Yarrp6's statelessness means a shard's entire progress is one
// permutation cursor plus its result store; everything else a resumed
// run needs — clocks, codec epochs, counters, curve and progress
// series, in-flight replies — is small bookkeeping around that fact.
// Checkpoint serializes it all into one versioned artifact: a magic
// header followed by length-prefixed sections, each protected by its
// own CRC32, so truncation and corruption are detected per section
// with typed errors and the decoder never panics on arbitrary bytes
// (FuzzCheckpointDecode pins this). Resume reconstructs the campaign
// so that interrupt-at-any-instant plus resume reproduces the
// uninterrupted run byte for byte — stores, discovery curves, and
// progress streams alike — at any shard count and batch size.
//
// Router token-bucket levels ride along when the connection supports
// it: each shard section ends with an opaque simulator-state blob
// (probe.SimStateCheckpointer) that the resumed connection imports, so
// interrupt plus resume is byte-exact even when an ICMPv6 rate limiter
// was saturated across the interrupt instant. Version-01 artifacts lack
// the blob; resuming one falls back to prime replay of the schedule
// preceding the cursor (probe.Primer), which is exact for non-fill
// runs.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net/netip"
	"sort"
	"time"

	"beholder/internal/probe"
	"beholder/internal/telemetry"
)

// checkpointMagic opens every artifact; the trailing digits are the
// format version, so a layout change bumps the magic itself. Version 02
// added the per-shard simulator-state blob (router token-bucket levels)
// and the adaptive-campaign section; version 01 artifacts still decode
// (their shards carry no blob, so blob-less resume semantics apply).
const (
	checkpointMagic   = "Y6CKPT02"
	checkpointMagicV1 = "Y6CKPT01"
)

// checkpointVersion validates the artifact magic, returning the format
// version and the remaining section bytes.
func checkpointVersion(artifact []byte) (int, []byte, error) {
	if len(artifact) >= len(checkpointMagic) {
		switch string(artifact[:len(checkpointMagic)]) {
		case checkpointMagic:
			return 2, artifact[len(checkpointMagic):], nil
		case checkpointMagicV1:
			return 1, artifact[len(checkpointMagic):], nil
		}
	}
	return 0, nil, fmt.Errorf("%w: bad magic", ErrCheckpoint)
}

// Artifact section types.
const (
	sectConfig   = 1
	sectShard    = 2
	sectAdaptive = 3
)

// Checkpoint decode errors. Every failure wraps ErrCheckpoint;
// corruption detected by a section checksum additionally wraps
// ErrCheckpointCRC.
var (
	ErrCheckpoint    = errors.New("yarrp6: invalid checkpoint artifact")
	ErrCheckpointCRC = errors.New("checksum mismatch")
)

// ErrNotCheckpointable reports that the campaign has no interrupted
// state to serialize: it has not run, ran to completion without an
// interrupt request, or was degraded by shard quarantine (recovery
// probers are not part of the artifact schema).
var ErrNotCheckpointable = errors.New("yarrp6: campaign is not checkpointable")

// resumeShard is one shard's decoded checkpoint state.
type resumeShard struct {
	done      bool
	stats     Stats
	rs        *shardResume // nil when done
	samples   []telemetry.Sample
	firstSeen map[netip.Addr]time.Duration
	store     *probe.Store
	// conn, when non-nil, is the live connection the shard state was
	// captured from (Campaign.Rewind): the resumed shard reuses it
	// instead of opening a fresh clone, keeping the simulator's flow-plan
	// and template caches warm across a periodic checkpoint.
	conn probe.Conn
}

// resumeState is a decoded artifact: the campaign shape plus every
// shard's state.
type resumeState struct {
	epoch  time.Duration
	shards []*resumeShard
	// tmpl carries the campaign's shared probe-template store across an
	// in-process Rewind so rebuilt shard codecs skip re-deriving every
	// target's template. Nil for artifact-decoded resumes.
	tmpl *probe.TmplStore
}

// Checkpoint serializes the campaign's complete state after an
// interrupted RunContext (InterruptAt or context cancellation). The
// artifact captures per-shard permutation cursors, store snapshots,
// discovery-curve and progress series, counter deltas, and in-flight
// replies; Resume reconstructs a campaign that continues the run
// exactly. Quarantine-degraded campaigns are not checkpointable.
func (c *Campaign) Checkpoint() ([]byte, error) {
	if !c.keep || len(c.shards) == 0 {
		return nil, ErrNotCheckpointable
	}
	if c.quarantined {
		return nil, fmt.Errorf("%w: shards were quarantined", ErrNotCheckpointable)
	}
	buf := append([]byte(nil), checkpointMagic...)
	buf = appendSection(buf, sectConfig, c.appendConfig(nil))
	for _, ss := range c.shards {
		buf = appendSection(buf, sectShard, c.appendShard(nil, ss))
	}
	return buf, nil
}

// Rewind returns a fresh campaign that continues this interrupted run
// in-process — the same continuation Resume(Checkpoint(), ...) builds,
// without the serialize/decode round trip. The receiver hands its live
// shard state (stores, permutation cursors, in-flight replies,
// simulator blobs) to the returned campaign and must not be run,
// checkpointed, or rewound again. Periodic checkpointing wants this
// path: each snapshot cycle pays one serialization for the durable
// artifact, not a second full decode just to keep running. The
// continuation is byte-identical to the artifact round trip — both
// feed RunContext the state captured at the same probe boundary.
func (c *Campaign) Rewind(rc ResumeConfig, connOf ConnFactory) (*Campaign, error) {
	if !c.keep || len(c.shards) == 0 {
		return nil, ErrNotCheckpointable
	}
	if c.quarantined {
		return nil, fmt.Errorf("%w: shards were quarantined", ErrNotCheckpointable)
	}
	state := &resumeState{epoch: c.epoch, shards: make([]*resumeShard, 0, len(c.shards))}
	for _, ss := range c.shards {
		sh := &resumeShard{done: ss.done, stats: ss.stats, store: ss.store}
		if ss.track != nil {
			sh.firstSeen = ss.track.first
		}
		if ss.done {
			if ss.prog != nil {
				sh.samples = ss.prog.Samples()
			}
		} else {
			rs := ss.rs
			if rs == nil {
				return nil, ErrNotCheckpointable
			}
			// Mirror decodeShard: the capture's stats double as the
			// restored run state for a live shard.
			rs.stats = ss.stats
			rs.notMine = ss.stats.NotMine
			rs.live = true
			sh.samples = rs.samples
			sh.rs = rs
			sh.conn = ss.conn
		}
		state.shards = append(state.shards, sh)
	}
	state.tmpl = c.tmpl
	cfg := c.cfg
	cfg.NewObserver = rc.NewObserver
	cfg.Telemetry = rc.Telemetry
	cfg.InterruptAt = rc.InterruptAt
	if cfg.Progress != nil {
		cfg.Progress = &ProgressConfig{Writer: rc.ProgressWriter, SampleEvery: c.slots, PerShard: rc.ProgressPerShard}
	}
	return &Campaign{cfg: cfg, connOf: connOf, epoch: c.epoch, res: state}, nil
}

func appendSection(buf []byte, typ byte, payload []byte) []byte {
	buf = append(buf, typ)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

func (c *Campaign) appendConfig(buf []byte) []byte {
	cfg := &c.cfg
	var flags byte
	if cfg.RecordPaths {
		flags |= 1
	}
	if cfg.Fill {
		flags |= 2
	}
	if cfg.Progress != nil {
		flags |= 4
	}
	buf = append(buf, flags, cfg.MinTTL, cfg.MaxTTL, cfg.Proto, cfg.Instance, cfg.FillLimit, cfg.NeighborhoodTTL)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(cfg.PPS))
	buf = binary.LittleEndian.AppendUint64(buf, cfg.Key)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cfg.Shards))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cfg.Batch))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cfg.NeighborhoodWindow))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cfg.DrainTimeout))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.epoch))
	buf = binary.LittleEndian.AppendUint64(buf, c.slots)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cfg.Targets)))
	for _, t := range cfg.Targets {
		t16 := t.As16()
		buf = append(buf, t16[:]...)
	}
	return buf
}

func (c *Campaign) appendShard(buf []byte, ss *shardState) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ss.index))
	done := byte(0)
	if ss.done {
		done = 1
	}
	buf = append(buf, done)
	rs := ss.rs
	if rs == nil {
		rs = &shardResume{}
	}
	buf = binary.LittleEndian.AppendUint64(buf, rs.cursor)
	buf = appendDur(buf, rs.epoch)
	buf = appendDur(buf, rs.now)
	buf = appendDur(buf, rs.drainDeadline)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rs.nextCurve))

	st := ss.stats
	buf = appendDur(buf, time.Duration(st.ProbesSent))
	buf = appendDur(buf, time.Duration(st.Fills))
	buf = appendDur(buf, time.Duration(st.Skipped))
	buf = appendDur(buf, time.Duration(st.Replies))
	buf = appendDur(buf, time.Duration(st.NotMine))
	buf = appendDur(buf, time.Duration(st.Retries))
	buf = appendDur(buf, st.Elapsed)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.Curve)))
	for _, p := range st.Curve {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Probes))
		buf = appendDur(buf, p.At)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Interfaces))
	}
	for _, k := range rs.kindCount {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
	}
	nLast := 0
	for _, at := range rs.lastNew {
		if at != 0 {
			nLast++
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(nLast))
	for ttl, at := range rs.lastNew {
		if at != 0 {
			buf = append(buf, byte(ttl))
			buf = appendDur(buf, at)
		}
	}
	samples := rs.samples
	if ss.done && ss.prog != nil {
		samples = ss.prog.Samples()
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(samples)))
	for _, s := range samples {
		buf = appendDur(buf, s.At)
		buf = appendDur(buf, time.Duration(s.Probes))
		buf = appendDur(buf, time.Duration(s.Fills))
		buf = appendDur(buf, time.Duration(s.Replies))
		buf = appendDur(buf, time.Duration(s.TimeExceeded))
		buf = appendDur(buf, time.Duration(s.EchoReplies))
		buf = appendDur(buf, time.Duration(s.DestUnreach))
		buf = appendDur(buf, time.Duration(s.TCPRsts))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rs.pending)))
	for _, pr := range rs.pending {
		buf = appendDur(buf, pr.at)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pr.data)))
		buf = append(buf, pr.data...)
	}
	if ss.track != nil {
		buf = append(buf, 1)
		addrs := make([]netip.Addr, 0, len(ss.track.first))
		for a := range ss.track.first {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(addrs)))
		for _, a := range addrs {
			a16 := a.As16()
			buf = append(buf, a16[:]...)
			buf = appendDur(buf, ss.track.first[a])
		}
	} else {
		buf = append(buf, 0)
	}
	enc := ss.store.AppendBinary(nil)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(enc)))
	buf = append(buf, enc...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rs.simState)))
	return append(buf, rs.simState...)
}

func appendDur(buf []byte, d time.Duration) []byte {
	return binary.LittleEndian.AppendUint64(buf, uint64(d))
}

// ResumeConfig supplies the non-serializable halves of a resumed
// campaign — observers, telemetry, progress output — plus an optional
// new interrupt instant for chained checkpointing.
type ResumeConfig struct {
	// NewObserver rebuilds per-shard observers. Resumed shards only see
	// replies arriving after the resume instant; derive streaming
	// artifacts from the merged store (graph.FromStore) instead.
	NewObserver func(shard int) probe.Observer
	// Telemetry receives the resumed run's metrics. Restored counter
	// totals replay into it on the first flush, so its final state
	// matches an uninterrupted run's registry.
	Telemetry *telemetry.Registry
	// ProgressWriter receives the full progress NDJSON stream when the
	// original campaign had progress enabled (ignored otherwise): the
	// restored pre-interrupt samples and the resumed run's together,
	// byte-identical to the uninterrupted stream.
	ProgressWriter io.Writer
	// ProgressPerShard adds the per-shard window records to the stream.
	ProgressPerShard bool
	// InterruptAt, when nonzero, interrupts the resumed run in turn at
	// that instant (relative to the original campaign epoch), allowing
	// checkpoint chains.
	InterruptAt time.Duration
}

// Resume reconstructs a checkpointed campaign. connOf must produce
// connections over the same (or an identically seeded) vantage universe
// as the original run, opening each shard's clock at the requested
// offset from the original campaign epoch — Campaign.Epoch exposes it.
// RunContext then continues the run exactly where Checkpoint cut it.
func Resume(artifact []byte, rc ResumeConfig, connOf ConnFactory) (*Campaign, error) {
	version, rest, err := checkpointVersion(artifact)
	if err != nil {
		return nil, err
	}
	var (
		cfg     CampaignConfig
		state   resumeState
		slots   uint64
		hasProg bool
		gotCfg  bool
	)
	for len(rest) > 0 {
		if len(rest) < 9 {
			return nil, fmt.Errorf("%w: truncated section header", ErrCheckpoint)
		}
		typ := rest[0]
		n := binary.LittleEndian.Uint32(rest[1:])
		sum := binary.LittleEndian.Uint32(rest[5:])
		rest = rest[9:]
		if uint64(n) > uint64(len(rest)) {
			return nil, fmt.Errorf("%w: section %d length %d exceeds input", ErrCheckpoint, typ, n)
		}
		payload := rest[:n]
		rest = rest[n:]
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, fmt.Errorf("%w: section %d: %w", ErrCheckpoint, typ, ErrCheckpointCRC)
		}
		switch typ {
		case sectConfig:
			if gotCfg {
				return nil, fmt.Errorf("%w: duplicate config section", ErrCheckpoint)
			}
			var err error
			if slots, hasProg, err = decodeConfig(payload, &cfg, &state); err != nil {
				return nil, err
			}
			gotCfg = true
		case sectShard:
			if !gotCfg {
				return nil, fmt.Errorf("%w: shard section before config", ErrCheckpoint)
			}
			sh, idx, err := decodeShard(payload, version)
			if err != nil {
				return nil, err
			}
			if idx != len(state.shards) || idx >= cfg.Shards {
				return nil, fmt.Errorf("%w: shard %d out of order", ErrCheckpoint, idx)
			}
			state.shards = append(state.shards, sh)
		case sectAdaptive:
			return nil, fmt.Errorf("%w: adaptive artifact; use ResumeAdaptive", ErrCheckpoint)
		default:
			return nil, fmt.Errorf("%w: unknown section type %d", ErrCheckpoint, typ)
		}
	}
	if !gotCfg {
		return nil, fmt.Errorf("%w: missing config section", ErrCheckpoint)
	}
	if len(state.shards) != cfg.Shards {
		return nil, fmt.Errorf("%w: %d shard sections for %d shards", ErrCheckpoint, len(state.shards), cfg.Shards)
	}
	if hasProg {
		cfg.Progress = &ProgressConfig{Writer: rc.ProgressWriter, SampleEvery: slots, PerShard: rc.ProgressPerShard}
	}
	cfg.NewObserver = rc.NewObserver
	cfg.Telemetry = rc.Telemetry
	cfg.InterruptAt = rc.InterruptAt
	return &Campaign{cfg: cfg, connOf: connOf, epoch: state.epoch, res: &state}, nil
}

// ckReader is a bounds-checked cursor over an untrusted artifact
// payload.
type ckReader struct {
	buf []byte
	off int
}

func (r *ckReader) need(n int) error {
	if len(r.buf)-r.off < n {
		return fmt.Errorf("%w: truncated payload at offset %d", ErrCheckpoint, r.off)
	}
	return nil
}

func (r *ckReader) u8() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *ckReader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *ckReader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *ckReader) dur() (time.Duration, error) {
	v, err := r.u64()
	return time.Duration(v), err
}

func (r *ckReader) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}

// count reads a length prefix and rejects values that cannot fit in the
// remaining payload, so corrupt lengths fail fast instead of driving
// huge allocations.
func (r *ckReader) count(elemMin int) (int, error) {
	v, err := r.u32()
	if err != nil {
		return 0, err
	}
	if int64(v)*int64(elemMin) > int64(len(r.buf)-r.off) {
		return 0, fmt.Errorf("%w: implausible count %d at offset %d", ErrCheckpoint, v, r.off)
	}
	return int(v), nil
}

func (r *ckReader) addr() (netip.Addr, error) {
	if err := r.need(16); err != nil {
		return netip.Addr{}, err
	}
	var a16 [16]byte
	copy(a16[:], r.buf[r.off:])
	r.off += 16
	return netip.AddrFrom16(a16), nil
}

func (r *ckReader) bytes(n int) ([]byte, error) {
	if err := r.need(n); err != nil {
		return nil, err
	}
	b := append([]byte(nil), r.buf[r.off:r.off+n]...)
	r.off += n
	return b, nil
}

func decodeConfig(payload []byte, cfg *CampaignConfig, state *resumeState) (slots uint64, hasProg bool, err error) {
	r := ckReader{buf: payload}
	flags, err := r.u8()
	if err != nil {
		return 0, false, err
	}
	cfg.RecordPaths = flags&1 != 0
	cfg.Fill = flags&2 != 0
	hasProg = flags&4 != 0
	fields := []*uint8{&cfg.MinTTL, &cfg.MaxTTL, &cfg.Proto, &cfg.Instance, &cfg.FillLimit, &cfg.NeighborhoodTTL}
	for _, f := range fields {
		if *f, err = r.u8(); err != nil {
			return 0, false, err
		}
	}
	pps, err := r.u64()
	if err != nil {
		return 0, false, err
	}
	cfg.PPS = math.Float64frombits(pps)
	if cfg.PPS <= 0 || math.IsNaN(cfg.PPS) || math.IsInf(cfg.PPS, 0) {
		return 0, false, fmt.Errorf("%w: invalid PPS", ErrCheckpoint)
	}
	if cfg.Key, err = r.u64(); err != nil {
		return 0, false, err
	}
	shards, err := r.u32()
	if err != nil {
		return 0, false, err
	}
	if shards == 0 || shards > 1<<16 {
		return 0, false, fmt.Errorf("%w: invalid shard count %d", ErrCheckpoint, shards)
	}
	cfg.Shards = int(shards)
	batch, err := r.u32()
	if err != nil {
		return 0, false, err
	}
	cfg.Batch = int(batch)
	if cfg.NeighborhoodWindow, err = r.dur(); err != nil {
		return 0, false, err
	}
	if cfg.DrainTimeout, err = r.dur(); err != nil {
		return 0, false, err
	}
	if state.epoch, err = r.dur(); err != nil {
		return 0, false, err
	}
	if slots, err = r.u64(); err != nil {
		return 0, false, err
	}
	nt, err := r.count(16)
	if err != nil {
		return 0, false, err
	}
	cfg.Targets = make([]netip.Addr, nt)
	for i := range cfg.Targets {
		if cfg.Targets[i], err = r.addr(); err != nil {
			return 0, false, err
		}
	}
	if r.off != len(payload) {
		return 0, false, fmt.Errorf("%w: %d trailing config bytes", ErrCheckpoint, len(payload)-r.off)
	}
	return slots, hasProg, nil
}

func decodeShard(payload []byte, version int) (*resumeShard, int, error) {
	r := ckReader{buf: payload}
	idx32, err := r.u32()
	if err != nil {
		return nil, 0, err
	}
	doneB, err := r.u8()
	if err != nil {
		return nil, 0, err
	}
	sh := &resumeShard{done: doneB != 0}
	rs := &shardResume{}
	if rs.cursor, err = r.u64(); err != nil {
		return nil, 0, err
	}
	if rs.epoch, err = r.dur(); err != nil {
		return nil, 0, err
	}
	if rs.now, err = r.dur(); err != nil {
		return nil, 0, err
	}
	if rs.drainDeadline, err = r.dur(); err != nil {
		return nil, 0, err
	}
	nc, err := r.u64()
	if err != nil {
		return nil, 0, err
	}
	rs.nextCurve = int64(nc)
	ints := []*int64{&sh.stats.ProbesSent, &sh.stats.Fills, &sh.stats.Skipped, &sh.stats.Replies, &sh.stats.NotMine, &sh.stats.Retries}
	for _, f := range ints {
		if *f, err = r.i64(); err != nil {
			return nil, 0, err
		}
	}
	if sh.stats.Elapsed, err = r.dur(); err != nil {
		return nil, 0, err
	}
	ncurve, err := r.count(20)
	if err != nil {
		return nil, 0, err
	}
	sh.stats.Curve = make([]CurvePoint, ncurve)
	for i := range sh.stats.Curve {
		p := &sh.stats.Curve[i]
		if p.Probes, err = r.i64(); err != nil {
			return nil, 0, err
		}
		if p.At, err = r.dur(); err != nil {
			return nil, 0, err
		}
		ifaces, err := r.u32()
		if err != nil {
			return nil, 0, err
		}
		p.Interfaces = int(ifaces)
	}
	for i := range rs.kindCount {
		if rs.kindCount[i], err = r.i64(); err != nil {
			return nil, 0, err
		}
	}
	nLast, err := r.count(9)
	if err != nil {
		return nil, 0, err
	}
	for i := 0; i < nLast; i++ {
		ttl, err := r.u8()
		if err != nil {
			return nil, 0, err
		}
		if rs.lastNew[ttl], err = r.dur(); err != nil {
			return nil, 0, err
		}
	}
	nSamples, err := r.count(64)
	if err != nil {
		return nil, 0, err
	}
	sh.samples = make([]telemetry.Sample, nSamples)
	for i := range sh.samples {
		s := &sh.samples[i]
		if s.At, err = r.dur(); err != nil {
			return nil, 0, err
		}
		ints := []*int64{&s.Probes, &s.Fills, &s.Replies, &s.TimeExceeded, &s.EchoReplies, &s.DestUnreach, &s.TCPRsts}
		for _, f := range ints {
			if *f, err = r.i64(); err != nil {
				return nil, 0, err
			}
		}
	}
	nPend, err := r.count(12)
	if err != nil {
		return nil, 0, err
	}
	for i := 0; i < nPend; i++ {
		at, err := r.dur()
		if err != nil {
			return nil, 0, err
		}
		n, err := r.count(1)
		if err != nil {
			return nil, 0, err
		}
		data, err := r.bytes(n)
		if err != nil {
			return nil, 0, err
		}
		rs.pending = append(rs.pending, pendingReply{at: at, data: data})
	}
	hasSeen, err := r.u8()
	if err != nil {
		return nil, 0, err
	}
	if hasSeen != 0 {
		nSeen, err := r.count(24)
		if err != nil {
			return nil, 0, err
		}
		sh.firstSeen = make(map[netip.Addr]time.Duration, nSeen)
		for i := 0; i < nSeen; i++ {
			a, err := r.addr()
			if err != nil {
				return nil, 0, err
			}
			if sh.firstSeen[a], err = r.dur(); err != nil {
				return nil, 0, err
			}
		}
	}
	nStore, err := r.count(1)
	if err != nil {
		return nil, 0, err
	}
	enc, err := r.bytes(nStore)
	if err != nil {
		return nil, 0, err
	}
	if sh.store, err = probe.DecodeStore(enc); err != nil {
		return nil, 0, fmt.Errorf("%w: shard store: %v", ErrCheckpoint, err)
	}
	if version >= 2 {
		// The simulator-state blob closes every version-02 shard section;
		// version-01 payloads end at the store.
		nSim, err := r.count(1)
		if err != nil {
			return nil, 0, err
		}
		if rs.simState, err = r.bytes(nSim); err != nil {
			return nil, 0, err
		}
	}
	if r.off != len(payload) {
		return nil, 0, fmt.Errorf("%w: %d trailing shard bytes", ErrCheckpoint, len(payload)-r.off)
	}
	if !sh.done {
		// Restore the full interrupted-run state. The curve, counters,
		// and samples live in the resume capture; stats doubles as the
		// merge-time view for done shards only.
		rs.stats = sh.stats
		rs.notMine = sh.stats.NotMine
		rs.samples = sh.samples
		sh.rs = rs
	}
	return sh, int(idx32), nil
}
