package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Progress streaming: deterministic virtual-time campaign samples.
//
// Each shard prober owns one Progress recorder. The campaign fixes a
// sampling step — a whole number of inter-probe gap slots — and the
// recorder's thresholds are epoch + k·step in absolute virtual time, the
// same instants for every shard regardless of where its permutation
// window lies. A shard records a sample whenever its clock crosses a
// threshold inside its send loop (the loop caps send runs at thresholds,
// so the crossing lands exactly on one), plus a pinning sample after any
// drain-tail activity and at window/run boundaries. Record dedupes
// consecutive samples with identical counters, so the series is exactly
// the shard's state-change history evaluated at threshold precision.
//
// Merge then evaluates the global thresholds: at threshold T the campaign
// state is the sum over shards of each shard's latest sample at or before
// T, and the interface count is the number of addresses whose first
// sighting (minimized across shards) is at or before T. Because the
// sharded schedule IS the serial schedule (netsim's clock-window
// invariant), this evaluation yields byte-identical streams at any shard
// count and batch size — the telemetry extension of the store/graph/curve
// byte-identity the matrix tests pin.
type Progress struct {
	epoch   time.Duration
	step    time.Duration
	samples []Sample
}

// Sample is one shard-local counter snapshot at virtual instant At
// (absolute virtual time).
type Sample struct {
	At           time.Duration
	Probes       int64
	Fills        int64
	Replies      int64
	TimeExceeded int64
	EchoReplies  int64
	DestUnreach  int64
	TCPRsts      int64
}

// counters reports whether two samples carry identical counter state
// (ignoring the timestamp).
func sameCounters(a, b Sample) bool {
	return a.Probes == b.Probes && a.Fills == b.Fills && a.Replies == b.Replies &&
		a.TimeExceeded == b.TimeExceeded && a.EchoReplies == b.EchoReplies &&
		a.DestUnreach == b.DestUnreach && a.TCPRsts == b.TCPRsts
}

// NewProgress creates a per-shard recorder. epoch is the campaign epoch
// in absolute virtual time (every shard of one campaign shares it); step
// is the sampling interval, a whole multiple of the inter-probe gap.
func NewProgress(epoch, step time.Duration) *Progress {
	return &Progress{epoch: epoch, step: step, samples: make([]Sample, 0, 160)}
}

// Epoch returns the campaign epoch the thresholds count from.
func (p *Progress) Epoch() time.Duration { return p.epoch }

// Step returns the sampling interval.
func (p *Progress) Step() time.Duration { return p.step }

// NextThreshold returns the earliest sampling threshold strictly after
// now. now must be at or after the epoch.
func (p *Progress) NextThreshold(now time.Duration) time.Duration {
	k := (now-p.epoch)/p.step + 1
	return p.epoch + k*p.step
}

// Record appends a sample, dropping it when the counters are unchanged
// from the previous record — an equal-counter sample at a later instant
// adds nothing to threshold evaluation.
func (p *Progress) Record(s Sample) {
	if n := len(p.samples); n > 0 && sameCounters(p.samples[n-1], s) {
		return
	}
	p.samples = append(p.samples, s)
}

// Samples returns the recorded series in record order.
func (p *Progress) Samples() []Sample { return p.samples }

// Restore replaces the recorded series with a copy of samples — the
// checkpoint/resume path, where a resumed shard recorder continues the
// interrupted shard's series so Merge sees one uninterrupted history.
func (p *Progress) Restore(samples []Sample) {
	p.samples = append(p.samples[:0], samples...)
}

// Point is one merged campaign-global progress sample. At is relative to
// the campaign epoch, so equal campaigns launched at different absolute
// virtual times stream identically.
type Point struct {
	At           time.Duration
	Probes       int64
	Fills        int64
	Replies      int64
	TimeExceeded int64
	EchoReplies  int64
	DestUnreach  int64
	TCPRsts      int64
	Interfaces   int
}

// Merge folds per-shard recorders into the campaign-global progress
// series, evaluated at thresholds step, 2·step, … strictly below end plus
// a final point at end itself. firstSeen holds the epoch-relative first
// sighting instants of the distinct discovered interfaces, sorted
// ascending; end is the campaign's elapsed virtual time.
func Merge(shards []*Progress, firstSeen []time.Duration, step, end time.Duration) []Point {
	if len(shards) == 0 || step <= 0 {
		return nil
	}
	n := int(end/step) + 1
	out := make([]Point, 0, n)
	idx := make([]int, len(shards)) // per-shard cursor: samples consumed so far
	ifaces := 0
	eval := func(t time.Duration) Point {
		pt := Point{At: t}
		for si, sh := range shards {
			samples := sh.samples
			for idx[si] < len(samples) && samples[idx[si]].At-sh.epoch <= t {
				idx[si]++
			}
			if idx[si] == 0 {
				continue
			}
			s := samples[idx[si]-1]
			pt.Probes += s.Probes
			pt.Fills += s.Fills
			pt.Replies += s.Replies
			pt.TimeExceeded += s.TimeExceeded
			pt.EchoReplies += s.EchoReplies
			pt.DestUnreach += s.DestUnreach
			pt.TCPRsts += s.TCPRsts
		}
		for ifaces < len(firstSeen) && firstSeen[ifaces] <= t {
			ifaces++
		}
		pt.Interfaces = ifaces
		return pt
	}
	for t := step; t < end; t += step {
		out = append(out, eval(t))
	}
	return append(out, eval(end))
}

// WritePoints streams the merged points as NDJSON sample records: one
// JSON object per line with a fixed field order, integer virtual
// timestamps, and fixed-precision derived rates, so equal point series
// write byte-identical streams. Lines are built with append-based
// formatting into one reused buffer: a campaign emits a sample every
// ~1/128th of its schedule, and reflective fmt on eleven fields showed
// up as a few percent of whole-run CPU (and ~10 allocations per line)
// in the telemetry-overhead benchmark.
func WritePoints(w io.Writer, pts []Point) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 256)
	var prev Point
	for _, p := range pts {
		rate := 0.0
		if dt := p.At - prev.At; dt > 0 {
			rate = float64(p.Probes-prev.Probes) / dt.Seconds()
		}
		disc := 0.0
		if p.Probes > 0 {
			disc = float64(p.Interfaces) / float64(p.Probes)
		}
		buf = buf[:0]
		buf = append(buf, `{"type":"sample","at_ns":`...)
		buf = strconv.AppendInt(buf, int64(p.At), 10)
		buf = append(buf, `,"probes":`...)
		buf = strconv.AppendInt(buf, p.Probes, 10)
		buf = append(buf, `,"fills":`...)
		buf = strconv.AppendInt(buf, p.Fills, 10)
		buf = append(buf, `,"replies":`...)
		buf = strconv.AppendInt(buf, p.Replies, 10)
		buf = append(buf, `,"time_exceeded":`...)
		buf = strconv.AppendInt(buf, p.TimeExceeded, 10)
		buf = append(buf, `,"echo_replies":`...)
		buf = strconv.AppendInt(buf, p.EchoReplies, 10)
		buf = append(buf, `,"dest_unreach":`...)
		buf = strconv.AppendInt(buf, p.DestUnreach, 10)
		buf = append(buf, `,"tcp_rsts":`...)
		buf = strconv.AppendInt(buf, p.TCPRsts, 10)
		buf = append(buf, `,"interfaces":`...)
		buf = strconv.AppendInt(buf, int64(p.Interfaces), 10)
		buf = append(buf, `,"rate_pps":`...)
		buf = strconv.AppendFloat(buf, rate, 'f', 1, 64)
		buf = append(buf, `,"discovery_per_probe":`...)
		buf = strconv.AppendFloat(buf, disc, 'f', 6, 64)
		buf = append(buf, '}', '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		prev = p
	}
	return bw.Flush()
}

// ShardLine is one shard's window summary for the optional per-shard
// section of a progress stream. Times are epoch-relative virtual time.
type ShardLine struct {
	Shard   int
	Start   time.Duration // window open (lo × gap)
	Elapsed time.Duration // shard run time from window open
	Lag     time.Duration // campaign end minus this shard's finish
	Probes  int64
	Fills   int64
	Replies int64
}

// WriteShardLines appends per-shard summary records. These depend on the
// shard count by construction (they describe the windows themselves), so
// deterministic byte-compare across shard counts excludes them; they are
// opt-in for live monitoring of shard skew.
func WriteShardLines(w io.Writer, lines []ShardLine) error {
	bw := bufio.NewWriter(w)
	for _, l := range lines {
		fmt.Fprintf(bw, `{"type":"shard","shard":%d,"start_ns":%d,"elapsed_ns":%d,"lag_ns":%d,`+
			`"probes":%d,"fills":%d,"replies":%d}`+"\n",
			l.Shard, int64(l.Start), int64(l.Elapsed), int64(l.Lag),
			l.Probes, l.Fills, l.Replies)
	}
	return bw.Flush()
}

// WriteSummary appends the campaign-total summary record. p should be the
// final merged point (At = campaign elapsed).
func WriteSummary(w io.Writer, p Point) error {
	_, err := fmt.Fprintf(w, `{"type":"summary","elapsed_ns":%d,"probes":%d,"fills":%d,"replies":%d,"interfaces":%d}`+"\n",
		int64(p.At), p.Probes, p.Fills, p.Replies, p.Interfaces)
	return err
}
