package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// MetricValue is one named counter or gauge reading.
type MetricValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one named histogram reading. Counts has one entry per
// bound plus a final overflow bucket.
type HistogramValue struct {
	Name   string  `json:"name"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// Snapshot is a point-in-time copy of a registry, each section sorted by
// metric name so equal registry states render byte-identically.
type Snapshot struct {
	Counters   []MetricValue    `json:"counters"`
	Gauges     []MetricValue    `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Counter returns the named counter's value; ok is false when absent.
func (s Snapshot) Counter(name string) (int64, bool) { return findValue(s.Counters, name) }

// Gauge returns the named gauge's value; ok is false when absent.
func (s Snapshot) Gauge(name string) (int64, bool) { return findValue(s.Gauges, name) }

// Histogram returns the named histogram reading; ok is false when absent.
func (s Snapshot) Histogram(name string) (HistogramValue, bool) {
	i := sort.Search(len(s.Histograms), func(i int) bool { return s.Histograms[i].Name >= name })
	if i < len(s.Histograms) && s.Histograms[i].Name == name {
		return s.Histograms[i], true
	}
	return HistogramValue{}, false
}

func findValue(vs []MetricValue, name string) (int64, bool) {
	i := sort.Search(len(vs), func(i int) bool { return vs[i].Name >= name })
	if i < len(vs) && vs[i].Name == name {
		return vs[i].Value, true
	}
	return 0, false
}

// Sub returns the delta snapshot s minus prev: counter values and
// histogram counts are subtracted (metrics absent from prev pass
// through), gauges keep their current readings. Both snapshots must come
// from the same registry lineage.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make([]MetricValue, len(s.Counters)),
		Gauges:     make([]MetricValue, len(s.Gauges)),
		Histograms: make([]HistogramValue, len(s.Histograms)),
	}
	copy(out.Gauges, s.Gauges)
	for i, c := range s.Counters {
		if v, ok := findValue(prev.Counters, c.Name); ok {
			c.Value -= v
		}
		out.Counters[i] = c
	}
	for i, h := range s.Histograms {
		d := HistogramValue{Name: h.Name, Bounds: h.Bounds, Counts: make([]int64, len(h.Counts)), Sum: h.Sum, Count: h.Count}
		copy(d.Counts, h.Counts)
		if p, ok := prev.Histogram(h.Name); ok && len(p.Counts) == len(d.Counts) {
			for j := range d.Counts {
				d.Counts[j] -= p.Counts[j]
			}
			d.Sum -= p.Sum
			d.Count -= p.Count
		}
		out.Histograms[i] = d
	}
	return out
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format: counters as `<name> <value>`, gauges likewise, histograms as
// cumulative `_bucket{le="..."}` series with `_sum` and `_count`. Output
// order is the snapshot's sorted metric order, so equal snapshots render
// byte-identically.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, c := range s.Counters {
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", c.Name, c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", g.Name, g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(bw, "# TYPE %s histogram\n", h.Name)
		var cum int64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", h.Name, b, cum)
		}
		cum += h.Counts[len(h.Bounds)]
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, cum)
		fmt.Fprintf(bw, "%s_sum %d\n%s_count %d\n", h.Name, h.Sum, h.Name, h.Count)
	}
	return bw.Flush()
}
