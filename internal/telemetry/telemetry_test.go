package telemetry

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Set(3)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	r := NewRegistry()
	h := r.Histogram("h", []int64{10, 20})
	for _, v := range []int64{5, 10, 11, 20, 21, 1000} {
		h.Observe(v)
	}
	hv, ok := r.Snapshot().Histogram("h")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	wantCounts := []int64{2, 2, 2} // ≤10, ≤20, overflow
	for i, w := range wantCounts {
		if hv.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, hv.Counts[i], w)
		}
	}
	if hv.Count != 6 || hv.Sum != 5+10+11+20+21+1000 {
		t.Fatalf("count/sum = %d/%d", hv.Count, hv.Sum)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Fatal("Gauge not idempotent")
	}
	if r.Histogram("c", RTTBucketsUSec) != r.Histogram("c", nil) {
		t.Fatal("Histogram not idempotent")
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("probes")
	g := r.Gauge("ifaces")
	c.Add(10)
	g.Set(3)
	d1 := r.Delta()
	if v, _ := d1.Counter("probes"); v != 10 {
		t.Fatalf("first delta probes = %d, want 10", v)
	}
	c.Add(5)
	g.Set(9)
	d2 := r.Delta()
	if v, _ := d2.Counter("probes"); v != 5 {
		t.Fatalf("second delta probes = %d, want 5", v)
	}
	if v, _ := d2.Gauge("ifaces"); v != 9 {
		t.Fatalf("delta gauge = %d, want current value 9", v)
	}
	if _, ok := d2.Counter("absent"); ok {
		t.Fatal("lookup of absent metric succeeded")
	}
}

func TestShardFlush(t *testing.T) {
	r := NewRegistry()
	s1 := r.NewShard()
	s2 := r.NewShard()
	c1 := s1.Counter("probes")
	c2 := s2.Counter("probes")
	h1 := s1.Histogram("rtt", []int64{100})
	c1.Add(7)
	c2.Inc()
	h1.Observe(50)
	h1.Observe(500)
	// Nothing visible before flush.
	if v, _ := r.Snapshot().Counter("probes"); v != 0 {
		t.Fatalf("pre-flush counter = %d, want 0", v)
	}
	s1.Flush()
	s2.Flush()
	if v, _ := r.Snapshot().Counter("probes"); v != 8 {
		t.Fatalf("post-flush counter = %d, want 8", v)
	}
	hv, _ := r.Snapshot().Histogram("rtt")
	if hv.Count != 2 || hv.Counts[0] != 1 || hv.Counts[1] != 1 {
		t.Fatalf("post-flush hist = %+v", hv)
	}
	// Flush is idempotent on zeroed state.
	s1.Flush()
	if v, _ := r.Snapshot().Counter("probes"); v != 8 {
		t.Fatalf("double flush changed counter: %d", v)
	}
}

func TestProgressRecordDedup(t *testing.T) {
	p := NewProgress(0, 10)
	p.Record(Sample{At: 5, Probes: 1})
	p.Record(Sample{At: 7, Probes: 1}) // same counters → dropped
	p.Record(Sample{At: 9, Probes: 2})
	if n := len(p.Samples()); n != 2 {
		t.Fatalf("samples = %d, want 2", n)
	}
	if p.Samples()[0].At != 5 {
		t.Fatalf("dedup kept later stamp: %v", p.Samples()[0].At)
	}
}

func TestNextThreshold(t *testing.T) {
	p := NewProgress(100, 10)
	cases := []struct{ now, want time.Duration }{
		{100, 110}, {101, 110}, {109, 110}, {110, 120}, {119, 120},
	}
	for _, c := range cases {
		if got := p.NextThreshold(c.now); got != c.want {
			t.Fatalf("NextThreshold(%d) = %d, want %d", c.now, got, c.want)
		}
	}
}

// TestMergeShardInvariance splits one schedule of events across two
// recorders (with different epooch-relative activity windows) and checks
// the merged series equals the single-recorder evaluation — the unit-level
// version of the campaign byte-identity property.
func TestMergeShardInvariance(t *testing.T) {
	const step, end = 10, 50
	// Serial: one recorder sees all activity.
	serial := NewProgress(0, step)
	serial.Record(Sample{At: 8, Probes: 2, Replies: 1, TimeExceeded: 1})
	serial.Record(Sample{At: 23, Probes: 5, Replies: 2, TimeExceeded: 2})
	serial.Record(Sample{At: 41, Probes: 9, Replies: 4, TimeExceeded: 3, EchoReplies: 1})
	// Sharded: same totals split across two recorders with a shifted epoch
	// for shard 1 (its samples carry absolute stamps epoch+rel).
	a := NewProgress(0, step)
	a.Record(Sample{At: 8, Probes: 2, Replies: 1, TimeExceeded: 1})
	a.Record(Sample{At: 23, Probes: 3, Replies: 1, TimeExceeded: 1})
	a.Record(Sample{At: 41, Probes: 5, Replies: 2, TimeExceeded: 1, EchoReplies: 1})
	b := NewProgress(1000, step)
	b.Record(Sample{At: 1000 + 23, Probes: 2, Replies: 1, TimeExceeded: 1})
	b.Record(Sample{At: 1000 + 41, Probes: 4, Replies: 2, TimeExceeded: 2})
	first := []time.Duration{8, 23, 23, 41}
	got := Merge([]*Progress{a, b}, first, step, end)
	want := Merge([]*Progress{serial}, first, step, end)
	if len(got) != len(want) {
		t.Fatalf("len %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("point %d: sharded %+v != serial %+v", i, got[i], want[i])
		}
	}
	// Thresholds 10,20,30,40 plus the end point 50.
	if len(got) != 5 || got[len(got)-1].At != end {
		t.Fatalf("thresholds wrong: %+v", got)
	}
	if got[0].Probes != 2 || got[0].Interfaces != 1 {
		t.Fatalf("t=10 point wrong: %+v", got[0])
	}
	if got[4].Probes != 9 || got[4].Interfaces != 4 {
		t.Fatalf("end point wrong: %+v", got[4])
	}
}

func TestWritePointsSchema(t *testing.T) {
	var buf bytes.Buffer
	pts := []Point{
		{At: 10 * time.Millisecond, Probes: 100, Replies: 40, TimeExceeded: 30, Interfaces: 12},
		{At: 20 * time.Millisecond, Probes: 200, Fills: 3, Replies: 80, TimeExceeded: 55, EchoReplies: 5, Interfaces: 17},
	}
	if err := WritePoints(&buf, pts); err != nil {
		t.Fatal(err)
	}
	want := `{"type":"sample","at_ns":10000000,"probes":100,"fills":0,"replies":40,"time_exceeded":30,"echo_replies":0,"dest_unreach":0,"tcp_rsts":0,"interfaces":12,"rate_pps":10000.0,"discovery_per_probe":0.120000}
{"type":"sample","at_ns":20000000,"probes":200,"fills":3,"replies":80,"time_exceeded":55,"echo_replies":5,"dest_unreach":0,"tcp_rsts":0,"interfaces":17,"rate_pps":10000.0,"discovery_per_probe":0.085000}
`
	if buf.String() != want {
		t.Fatalf("NDJSON mismatch:\ngot:  %q\nwant: %q", buf.String(), want)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("probes_total").Add(12)
	r.Gauge("interfaces").Set(4)
	h := r.Histogram("rtt_usec", []int64{100, 200})
	h.Observe(50)
	h.Observe(150)
	h.Observe(900)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE probes_total counter\nprobes_total 12\n",
		"# TYPE interfaces gauge\ninterfaces 4\n",
		"rtt_usec_bucket{le=\"100\"} 1\n",
		"rtt_usec_bucket{le=\"200\"} 2\n",
		"rtt_usec_bucket{le=\"+Inf\"} 3\n",
		"rtt_usec_sum 1100\nrtt_usec_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("probes_total").Add(99)
	addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Skipf("listen: %v", err)
	}
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "probes_total 99") {
		t.Fatalf("/metrics: code %d body %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "cmdline") {
		t.Fatalf("/debug/vars: code %d", code)
	} else {
		_ = body
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: code %d", code)
	}
}

func TestShardAllocationFree(t *testing.T) {
	r := NewRegistry()
	s := r.NewShard()
	c := s.Counter("probes")
	h := s.Histogram("rtt", RTTBucketsUSec)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		h.Observe(1234)
	})
	if allocs != 0 {
		t.Fatalf("hot-path allocs = %v, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() { s.Flush() })
	if allocs != 0 {
		t.Fatalf("flush allocs = %v, want 0", allocs)
	}
}
