// Package telemetry is the campaign observability layer: a zero/near-zero
// allocation metrics core (atomic counters, gauges, fixed-bucket
// histograms), per-shard views that fold into campaign-level snapshots
// with the same delta-flush discipline the simulator uses for per-vantage
// stat batching, a deterministic virtual-time progress stream, and an
// opt-in HTTP endpoint serving expvar/Prometheus text plus pprof.
//
// Two disciplines keep telemetry off the packet fast path:
//
//   - Hot-path code never touches shared atomics per event. Each prober
//     shard increments plain int64 fields through a Shard view and
//     flushes them into the Registry's atomics at discovery-curve sample
//     points and at run end — exactly the cadence netsim.Vantage batches
//     its SimStats contributions at.
//
//   - Everything observable is deterministic in virtual time. Progress
//     samples are taken when the shard's virtual clock crosses
//     virtual-time thresholds (never wall clock), so the merged stream is
//     byte-identical at any shard count and batch size; see progress.go.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Bounds are inclusive upper
// bucket edges in ascending order; one implicit overflow bucket catches
// everything above the last bound. Observations update atomics, so a
// histogram may be shared — but hot paths should observe through a
// Shard-local view (LocalHist) and flush in batches.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.counts[bucketOf(h.bounds, v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// add folds a batch of per-bucket counts (the Shard flush path).
func (h *Histogram) add(counts []int64, sum, count int64) {
	for i, n := range counts {
		if n != 0 {
			h.counts[i].Add(n)
		}
	}
	if sum != 0 {
		h.sum.Add(sum)
	}
	if count != 0 {
		h.count.Add(count)
	}
}

// bucketOf returns the bucket index for v: the first bound >= v, or the
// overflow bucket. Bounds lists are short (≤ ~16), so a linear scan beats
// binary search on branch prediction.
func bucketOf(bounds []int64, v int64) int {
	for i, b := range bounds {
		if v <= b {
			return i
		}
	}
	return len(bounds)
}

// Default bucket bounds for the prober's three hot-path distributions.
var (
	// RTTBucketsUSec buckets reply round-trip times in microseconds.
	RTTBucketsUSec = []int64{500, 1000, 2000, 5000, 10000, 20000, 50000, 100000, 200000, 500000}
	// BatchFillBuckets buckets per-dispatch send-run lengths in probes.
	BatchFillBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128}
	// DrainGapBuckets buckets drain-tail fast-forward jumps in gap slots.
	DrainGapBuckets = []int64{1, 2, 4, 16, 64, 256, 1024, 4096}
)

// Registry is a named-metric store: the campaign-level aggregation point
// shard views flush into and snapshots read from. Metric creation takes a
// lock; the returned handles are lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	lastMu sync.Mutex
	last   Snapshot // previous Delta() baseline
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. The bounds
// of the first creation win; callers must use consistent bounds per name.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		b := make([]int64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every metric, sorted by name — a deterministic,
// self-contained value safe to retain after the registry moves on.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	s.Counters = make([]MetricValue, 0, len(r.counters))
	for name, c := range r.counters {
		s.Counters = append(s.Counters, MetricValue{Name: name, Value: c.Value()})
	}
	s.Gauges = make([]MetricValue, 0, len(r.gauges))
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, MetricValue{Name: name, Value: g.Value()})
	}
	s.Histograms = make([]HistogramValue, 0, len(r.hists))
	for name, h := range r.hists {
		hv := HistogramValue{Name: name, Bounds: h.bounds, Counts: make([]int64, len(h.counts))}
		for i := range h.counts {
			hv.Counts[i] = h.counts[i].Load()
		}
		hv.Sum = h.sum.Load()
		hv.Count = h.count.Load()
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Delta returns the change since the previous Delta call (or since
// creation, the first time): counters and histogram counts are
// subtracted, gauges report their current values.
func (r *Registry) Delta() Snapshot {
	cur := r.Snapshot()
	r.lastMu.Lock()
	defer r.lastMu.Unlock()
	d := cur.Sub(r.last)
	r.last = cur
	return d
}

// Shard is a single goroutine's local view of a registry: counters and
// histograms accumulate in plain (non-atomic) fields and fold into the
// shared atomics only at Flush. One shard belongs to one goroutine; the
// registry handles it flushes into are shared and lock-free.
type Shard struct {
	reg    *Registry
	locals []*Local
	lhists []*LocalHist
}

// NewShard creates a shard-local view of the registry.
func (r *Registry) NewShard() *Shard { return &Shard{reg: r} }

// Local is a shard-local counter: plain increments, folded into the
// shared Counter at Shard.Flush.
type Local struct {
	n int64
	c *Counter
}

// Inc increments the local count by one.
func (l *Local) Inc() { l.n++ }

// Add increments the local count by n.
func (l *Local) Add(n int64) { l.n += n }

// LocalHist is a shard-local histogram view.
type LocalHist struct {
	counts []int64
	sum    int64
	n      int64
	bounds []int64
	h      *Histogram
}

// Observe records one value locally.
func (lh *LocalHist) Observe(v int64) {
	lh.counts[bucketOf(lh.bounds, v)]++
	lh.sum += v
	lh.n++
}

// Counter returns (creating if needed) this shard's local view of the
// named registry counter.
func (s *Shard) Counter(name string) *Local {
	l := &Local{c: s.reg.Counter(name)}
	s.locals = append(s.locals, l)
	return l
}

// Histogram returns (creating if needed) this shard's local view of the
// named registry histogram.
func (s *Shard) Histogram(name string, bounds []int64) *LocalHist {
	h := s.reg.Histogram(name, bounds)
	lh := &LocalHist{counts: make([]int64, len(h.bounds)+1), bounds: h.bounds, h: h}
	s.lhists = append(s.lhists, lh)
	return lh
}

// Flush folds every pending local count into the shared registry and
// zeroes the local state. Call it at batch boundaries (curve samples, run
// end) — never per event.
func (s *Shard) Flush() {
	for _, l := range s.locals {
		if l.n != 0 {
			l.c.Add(l.n)
			l.n = 0
		}
	}
	for _, lh := range s.lhists {
		if lh.n != 0 {
			lh.h.add(lh.counts, lh.sum, lh.n)
			for i := range lh.counts {
				lh.counts[i] = 0
			}
			lh.sum, lh.n = 0, 0
		}
	}
}
