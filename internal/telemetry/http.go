package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler exposing the registry:
//
//	/metrics       Prometheus text exposition of a live Snapshot
//	/debug/vars    standard expvar JSON (process-wide)
//	/debug/pprof/  the full net/http/pprof suite, so the yarrp6-shard /
//	               yarrp6-batch pprof labels are one command away:
//	               go tool pprof http://addr/debug/pprof/profile
//
// The handler uses its own mux, so mounting it never touches
// http.DefaultServeMux.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Snapshot().WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve listens on addr and serves Handler(r) until the process exits or
// the listener fails. It returns the bound listener address (useful with
// ":0") or an error if the listen fails; serving happens on a background
// goroutine and serve-side errors are dropped, matching the endpoint's
// best-effort, opt-in role.
func Serve(addr string, r *Registry) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(ln)
	return ln.Addr(), nil
}
