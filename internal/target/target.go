// Package target implements the paper's three-step target generation
// pipeline (Section 3.3): seed addresses and prefixes are mapped to a
// uniform aggregation level by the zn prefix transformation, the
// transformed prefixes are deduplicated, and one probe target is
// synthesized per unique prefix by interface-identifier synthesis.
//
// The pipeline is deterministic given its *rand.Rand: transformed
// prefixes are sorted before any random IIDs are drawn, so the same
// seed list and seed value always yield the identical target set
// regardless of input ordering. Deduplication is a single sort pass
// (ipv6.Set), so campaign-scale sets of millions of targets build in
// O(n log n) without quadratic blowups.
package target

import (
	"math/rand"
	"net/netip"
	"strconv"

	"beholder/internal/ipv6"
	"beholder/internal/seeds"
)

// Synth selects the interface-identifier synthesis method applied to
// each transformed prefix (Section 3.3).
type Synth uint8

// Synthesis methods.
const (
	// LowByte1 synthesizes the ::1 address beneath each prefix — the
	// conventional gateway/server numbering most likely to exist.
	LowByte1 Synth = iota
	// FixedIID synthesizes one fixed pseudo-random IID (FixedIIDValue)
	// beneath each prefix: almost surely unassigned, so probes traverse
	// the full path toward the subnet rather than stopping at a host.
	FixedIID
	// RandomIID synthesizes an independent random IID per prefix.
	RandomIID
	// Known probes the seed addresses verbatim, skipping transformation
	// and synthesis — the paper's known-address control.
	Known
)

func (s Synth) String() string {
	switch s {
	case LowByte1:
		return "lowbyte1"
	case FixedIID:
		return "fixediid"
	case RandomIID:
		return "randomiid"
	case Known:
		return "known"
	}
	return "unknown"
}

// FixedIIDValue is the fixed pseudo-random interface identifier used by
// the FixedIID synthesis. The value avoids the assigned-IID
// conventions the simulator (and the real Internet) use: it is not a
// small integer, not an embedded IPv4 address, and carries no EUI-64
// ff:fe marker.
const FixedIIDValue uint64 = 0x2b7e151628aed2a6

// Spec names one target set: the seed source, the zn transformation
// level, and the synthesis method.
type Spec struct {
	SeedName string
	ZN       int
	Synth    Synth
}

// Name returns the canonical set name, e.g. "caida-z64-fixediid".
// Known sets carry no transformation level.
func (s Spec) Name() string {
	if s.Synth == Known {
		return s.SeedName + "-known"
	}
	return s.SeedName + "-z" + strconv.Itoa(s.ZN) + "-" + s.Synth.String()
}

// Set is one generated target set.
type Set struct {
	Spec    Spec
	Targets *ipv6.Set
}

// Name returns the set's canonical name.
func (s *Set) Name() string { return s.Spec.Name() }

// Build runs the pipeline over one seed list. Address seeds are treated
// as /128 prefixes; prefix-only seeds (the CDN's kIP aggregates)
// contribute their prefixes directly. rng is consumed only by the
// RandomIID synthesis, in sorted-prefix order, keeping the output a
// pure function of (list, spec, rng seed).
func Build(list seeds.List, spec Spec, rng *rand.Rand) *Set {
	if spec.Synth == Known {
		return &Set{Spec: spec, Targets: knownTargets(list)}
	}
	bases := znBases(list, spec.ZN)
	out := make([]netip.Addr, len(bases))
	for i, b := range bases {
		switch spec.Synth {
		case LowByte1:
			out[i] = ipv6.WithIID(b, 1)
		case FixedIID:
			out[i] = ipv6.WithIID(b, FixedIIDValue)
		default: // RandomIID
			out[i] = ipv6.WithIID(b, rng.Uint64())
		}
	}
	return &Set{Spec: spec, Targets: ipv6.NewSet(out)}
}

// znBases applies the zn prefix transformation to every seed and
// returns the unique transformed base addresses in sorted order.
// Prefixes shorter than zn are extended (zero-filled); prefixes longer
// than zn aggregate up, so many seeds inside one /zn collapse to a
// single base — the knob Table 3 turns.
func znBases(list seeds.List, zn int) []netip.Addr {
	n := 0
	if list.Addrs != nil {
		n += list.Addrs.Len()
	}
	if list.Prefixes != nil {
		n += list.Prefixes.Len()
	}
	bases := make([]netip.Addr, 0, n)
	if list.Addrs != nil {
		for _, a := range list.Addrs.Addrs() {
			bases = append(bases, ipv6.Extend(netip.PrefixFrom(a, 128), zn).Addr())
		}
	}
	if list.Prefixes != nil {
		for _, p := range list.Prefixes.Prefixes() {
			bases = append(bases, ipv6.Extend(p, zn).Addr())
		}
	}
	return ipv6.NewSet(bases).Addrs()
}

// knownTargets passes seed addresses through verbatim. Prefix-only
// lists degrade to the ::1 address of each aggregate.
func knownTargets(list seeds.List) *ipv6.Set {
	if list.Addrs != nil {
		return list.Addrs.Clone()
	}
	if list.Prefixes == nil {
		return ipv6.EmptySet()
	}
	out := make([]netip.Addr, list.Prefixes.Len())
	for i, p := range list.Prefixes.Prefixes() {
		out[i] = ipv6.WithIID(ipv6.PrefixBase(p), 1)
	}
	return ipv6.NewSet(out)
}

// Combine unions several sets into one named set (the paper's
// "combined" and "total" rows). Membership is merged in a single
// sort pass over all inputs.
func Combine(name string, zn int, synth Synth, sets ...*Set) *Set {
	n := 0
	for _, s := range sets {
		n += s.Targets.Len()
	}
	all := make([]netip.Addr, 0, n)
	for _, s := range sets {
		all = append(all, s.Targets.Addrs()...)
	}
	return &Set{
		Spec:    Spec{SeedName: name, ZN: zn, Synth: synth},
		Targets: ipv6.NewSet(all),
	}
}
