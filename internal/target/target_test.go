package target

import (
	"math/rand"
	"net/netip"
	"testing"

	"beholder/internal/ipv6"
	"beholder/internal/seeds"
)

func addrList(ss ...string) seeds.List {
	addrs := make([]netip.Addr, len(ss))
	for i, s := range ss {
		addrs[i] = netip.MustParseAddr(s)
	}
	return seeds.List{Name: "test", Addrs: ipv6.NewSet(addrs)}
}

func prefixList(ss ...string) seeds.List {
	ps := make([]netip.Prefix, len(ss))
	for i, s := range ss {
		ps[i] = netip.MustParsePrefix(s)
	}
	return seeds.List{Name: "test", Prefixes: ipv6.NewPrefixSet(ps)}
}

func TestBuildDeterminism(t *testing.T) {
	list := addrList("2400:1:2:3::5", "2400:1:2:4::9", "2400:a:b:c::1", "2600:1:2:3::7")
	for _, synth := range []Synth{LowByte1, FixedIID, RandomIID, Known} {
		a := Build(list, Spec{SeedName: "test", ZN: 64, Synth: synth}, rand.New(rand.NewSource(9)))
		b := Build(list, Spec{SeedName: "test", ZN: 64, Synth: synth}, rand.New(rand.NewSource(9)))
		if a.Targets.Len() != b.Targets.Len() {
			t.Fatalf("%s: sizes differ: %d vs %d", synth, a.Targets.Len(), b.Targets.Len())
		}
		for i, x := range a.Targets.Addrs() {
			if x != b.Targets.At(i) {
				t.Fatalf("%s: member %d differs: %s vs %s", synth, i, x, b.Targets.At(i))
			}
		}
	}
	// Input ordering must not matter: the rng is consumed in sorted-
	// prefix order.
	rev := addrList("2600:1:2:3::7", "2400:a:b:c::1", "2400:1:2:4::9", "2400:1:2:3::5")
	a := Build(list, Spec{SeedName: "test", ZN: 64, Synth: RandomIID}, rand.New(rand.NewSource(3)))
	b := Build(rev, Spec{SeedName: "test", ZN: 64, Synth: RandomIID}, rand.New(rand.NewSource(3)))
	for i, x := range a.Targets.Addrs() {
		if x != b.Targets.At(i) {
			t.Fatalf("order-dependent RandomIID output at %d", i)
		}
	}
}

func TestZNTransformation(t *testing.T) {
	// Two addresses sharing a /48 but in distinct /64s.
	list := addrList("2400:1:2:3::5", "2400:1:2:4::9")
	cases := []struct {
		zn   int
		want int
	}{
		{40, 1}, {48, 1}, {56, 1}, {64, 2},
	}
	for _, c := range cases {
		set := Build(list, Spec{SeedName: "test", ZN: c.zn, Synth: LowByte1}, rand.New(rand.NewSource(1)))
		if set.Targets.Len() != c.want {
			t.Errorf("z%d: %d targets, want %d", c.zn, set.Targets.Len(), c.want)
		}
		// Every target's covering /zn must cover a seed, and the IID
		// must be the synthesized ::1.
		for _, a := range set.Targets.Addrs() {
			if ipv6.IID(a) != 1 {
				t.Errorf("z%d: IID %#x, want 1", c.zn, ipv6.IID(a))
			}
			p := ipv6.Extend(netip.PrefixFrom(a, 128), c.zn)
			covered := false
			for _, s := range list.Addrs.Addrs() {
				if p.Contains(s) {
					covered = true
				}
			}
			if !covered {
				t.Errorf("z%d target %s covers no seed", c.zn, a)
			}
		}
	}
	// Boundary: z48 base of the shared prefix is exact.
	set := Build(list, Spec{SeedName: "test", ZN: 48, Synth: LowByte1}, rand.New(rand.NewSource(1)))
	if got, want := set.Targets.At(0), netip.MustParseAddr("2400:1:2::1"); got != want {
		t.Errorf("z48 target = %s, want %s", got, want)
	}
}

func TestSynthModes(t *testing.T) {
	list := addrList("2400:1:2:3::5", "2400:9:8:7::6")
	rng := rand.New(rand.NewSource(4))

	lb := Build(list, Spec{SeedName: "test", ZN: 64, Synth: LowByte1}, rng)
	for _, a := range lb.Targets.Addrs() {
		if ipv6.IID(a) != 1 {
			t.Errorf("lowbyte1 IID = %#x", ipv6.IID(a))
		}
	}

	fx := Build(list, Spec{SeedName: "test", ZN: 64, Synth: FixedIID}, rng)
	for _, a := range fx.Targets.Addrs() {
		if ipv6.IID(a) != FixedIIDValue {
			t.Errorf("fixediid IID = %#x, want %#x", ipv6.IID(a), FixedIIDValue)
		}
	}
	if ipv6.IsEUI64IID(FixedIIDValue) {
		t.Error("FixedIIDValue carries the EUI-64 marker")
	}

	rd := Build(list, Spec{SeedName: "test", ZN: 64, Synth: RandomIID}, rand.New(rand.NewSource(5)))
	if rd.Targets.Len() != 2 {
		t.Fatalf("randomiid targets = %d", rd.Targets.Len())
	}
	if ipv6.IID(rd.Targets.At(0)) == ipv6.IID(rd.Targets.At(1)) {
		t.Error("randomiid drew identical IIDs for distinct prefixes")
	}

	kn := Build(list, Spec{SeedName: "test", ZN: 0, Synth: Known}, rng)
	if kn.Targets.Len() != 2 || !kn.Targets.Contains(netip.MustParseAddr("2400:1:2:3::5")) {
		t.Error("known synthesis did not pass seeds through")
	}
}

func TestPrefixListInput(t *testing.T) {
	// CDN-style aggregates: a /56 (shorter than z64) and two /64s
	// sharing a /48.
	list := prefixList("2400:5:5:500::/56", "2400:7:7:1::/64", "2400:7:7:2::/64")
	z64 := Build(list, Spec{SeedName: "cdn", ZN: 64, Synth: FixedIID}, rand.New(rand.NewSource(1)))
	if z64.Targets.Len() != 3 {
		t.Errorf("z64 targets = %d, want 3 (aggregate extends to its base /64)", z64.Targets.Len())
	}
	if !z64.Targets.Contains(ipv6.WithIID(netip.MustParseAddr("2400:5:5:500::"), FixedIIDValue)) {
		t.Error("short aggregate did not extend to its base /64")
	}
	z48 := Build(list, Spec{SeedName: "cdn", ZN: 48, Synth: FixedIID}, rand.New(rand.NewSource(1)))
	if z48.Targets.Len() != 2 {
		t.Errorf("z48 targets = %d, want 2 (the two /64s aggregate up)", z48.Targets.Len())
	}
}

func TestCombine(t *testing.T) {
	a := Build(addrList("2400:1:2:3::5"), Spec{SeedName: "a", ZN: 64, Synth: LowByte1}, rand.New(rand.NewSource(1)))
	b := Build(addrList("2400:1:2:3::9", "2400:f:e:d::1"), Spec{SeedName: "b", ZN: 64, Synth: LowByte1}, rand.New(rand.NewSource(1)))
	c := Combine("combined", 64, LowByte1, a, b)
	if c.Targets.Len() != 2 {
		t.Errorf("combined = %d targets, want 2 (shared /64 dedupes)", c.Targets.Len())
	}
	if c.Name() != "combined-z64-lowbyte1" {
		t.Errorf("name = %q", c.Name())
	}
}

func TestSpecName(t *testing.T) {
	if got := (Spec{SeedName: "caida", ZN: 64, Synth: FixedIID}).Name(); got != "caida-z64-fixediid" {
		t.Errorf("Name = %q", got)
	}
	if got := (Spec{SeedName: "fiebig", Synth: Known}).Name(); got != "fiebig-known" {
		t.Errorf("known Name = %q", got)
	}
}
