package sched

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"beholder/internal/core"
	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/telemetry"
	"beholder/internal/testutil"
)

// TestPeriodicCheckpoint pins the periodic-checkpoint cycle: a
// wall-slowed campaign under CheckpointEvery is interrupted,
// snapshotted to the sink, and resumed several times, completes with
// zero retries consumed, and its store is byte-identical to the solo
// uninterrupted run. Every sink artifact must be a structurally valid
// checkpoint, and the snapshots must surface in telemetry and the
// tenant stream.
func TestPeriodicCheckpoint(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	const seed = 1310
	env := newTestEnv(seed, nil)
	// Slow sends so the campaign spans many checkpoint intervals;
	// virtual time (and so every result byte) is untouched.
	op := func(spec *CampaignSpec) (core.ConnFactory, error) {
		inner, err := env.opener(spec)
		if err != nil {
			return nil, err
		}
		return func(shard int, start time.Duration) probe.Conn {
			return &slowConn{Vantage: inner(shard, start).(*netsim.Vantage), delay: time.Millisecond}
		}, nil
	}

	var mu sync.Mutex
	var artifacts [][]byte
	reg := telemetry.NewRegistry()
	s, err := New(Config{
		Opener:  op,
		Tenants: []Tenant{{Name: "acme"}},
		Workers: 1,
		// The watchdog must never fire here: only the checkpoint
		// timer may interrupt.
		StallBudget:     30 * time.Second,
		CheckpointEvery: 25 * time.Millisecond,
		CheckpointSink: func(spec *CampaignSpec, art []byte) error {
			mu.Lock()
			defer mu.Unlock()
			artifacts = append(artifacts, append([]byte(nil), art...))
			return nil
		},
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	var stream bytes.Buffer
	spec := testSpec("acme", "periodic", schedTargets(seed, 48))
	spec.Shards = 2
	spec.Batch = 1
	spec.Stream = &stream
	h, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != StateCompleted {
		t.Fatalf("state = %v (%s), want completed", res.State, res.Reason)
	}
	if res.Retries != 0 {
		t.Fatalf("periodic checkpoints consumed %d retries", res.Retries)
	}
	drainAll(t, s)

	mu.Lock()
	n := len(artifacts)
	mu.Unlock()
	if n == 0 {
		t.Fatal("no periodic checkpoint reached the sink")
	}
	for i, art := range artifacts {
		if _, err := core.InspectCheckpoint(art); err != nil {
			t.Fatalf("sink artifact %d invalid: %v", i, err)
		}
	}
	if got := counterVal(t, reg.Snapshot(), "sched_checkpoints_total"); got != int64(n) {
		t.Fatalf("sched_checkpoints_total = %d, sink saw %d", got, n)
	}
	if !strings.Contains(stream.String(), `"checkpoint"`) {
		t.Fatal("no checkpoint event on the tenant stream")
	}

	solo, _, err := soloRun(t, seed, nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Store.AppendBinary(nil), solo.AppendBinary(nil)) {
		t.Fatalf("store after %d periodic checkpoint cycles differs from solo run", n)
	}
}

// TestPeriodicCheckpointDisabled pins the zero-value behavior: without
// CheckpointEvery the sink is never called and no checkpoint metric
// moves.
func TestPeriodicCheckpointDisabled(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	const seed = 1311
	env := newTestEnv(seed, nil)
	reg := telemetry.NewRegistry()
	called := false
	s, err := New(Config{
		Opener:  env.opener,
		Tenants: []Tenant{{Name: "acme"}},
		Workers: 1,
		CheckpointSink: func(*CampaignSpec, []byte) error {
			called = true
			return nil
		},
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Submit(testSpec("acme", "plain", schedTargets(seed, 16)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := h.Wait(ctx)
	if err != nil || res.State != StateCompleted {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	drainAll(t, s)
	if called {
		t.Fatal("sink called with CheckpointEvery unset")
	}
	if got := counterVal(t, reg.Snapshot(), "sched_checkpoints_total"); got != 0 {
		t.Fatalf("sched_checkpoints_total = %d, want 0", got)
	}
}
