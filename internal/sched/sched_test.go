package sched

import (
	"context"
	"errors"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"beholder/internal/core"
	"beholder/internal/faultsim"
	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/telemetry"
	"beholder/internal/testutil"
)

// schedUniverse builds one campaign-grade universe (no scarce-regime
// token buckets, same rationale as the core campaign tests) with an
// optional fault plane installed before any vantage exists.
func schedUniverse(seed int64, fc *faultsim.Config) *netsim.Universe {
	cfg := netsim.TestConfig(seed)
	cfg.AggressivePercent = 0
	u := netsim.NewUniverse(cfg)
	u.SetFaults(fc)
	return u
}

// schedTargets samples n reachable LAN gateways; sampling is pure, so
// the throwaway universe never interferes with the probing one.
func schedTargets(seed int64, n int) []netip.Addr {
	u := schedUniverse(seed, nil)
	rng := rand.New(rand.NewSource(seed))
	kinds := []netsim.ASKind{netsim.KindHosting, netsim.KindEyeballISP, netsim.KindEnterprise}
	var out []netip.Addr
	for len(out) < n {
		as := u.RandomAS(rng, kinds[len(out)%len(kinds)])
		lan, ok := u.RandomLAN(rng, as)
		if !ok {
			continue
		}
		out = append(out, u.GatewayAddr(lan, as))
	}
	return out
}

// testEnv is one supervisor's execution environment: a universe, its
// vantage, and the opener implementing the epoch-pinning discipline the
// scheduler relies on. All vantage mutation (shard-group resets,
// cloning) is serialized under one mutex because concurrent campaigns'
// factories interleave — initial attempts, recovery shards, and
// failover resumes all clone from here.
type testEnv struct {
	mu sync.Mutex
	u  *netsim.Universe
	v  *netsim.Vantage
}

func newTestEnv(seed int64, fc *faultsim.Config) *testEnv {
	u := schedUniverse(seed, fc)
	v := u.NewVantage(netsim.VantageSpec{Name: "US-EDU-1", Kind: netsim.KindUniversity, ChainLen: 4})
	return &testEnv{u: u, v: v}
}

// opener builds one attempt's factory: a private campaign-tagged parent
// clone pinned at virtual zero, so the campaign's epoch is 0 and shard
// clones open exactly where a bare run's would — fresh or resumed.
func (e *testEnv) opener(spec *CampaignSpec) (core.ConnFactory, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.v.BeginShardGroup()
	p := e.v.Clone(0)
	p.SetCampaign(spec.Tag())
	p.BeginShardGroup()
	return func(_ int, start time.Duration) probe.Conn {
		e.mu.Lock()
		defer e.mu.Unlock()
		return p.Clone(start)
	}, nil
}

// coreConfigOf mirrors the supervisor's spec→campaign mapping for bare
// baseline runs (no telemetry, no stream observers — neither may affect
// result bytes).
func coreConfigOf(spec CampaignSpec) core.CampaignConfig {
	return core.CampaignConfig{
		Config: core.Config{
			Targets: spec.Targets,
			MinTTL:  spec.MinTTL,
			MaxTTL:  spec.MaxTTL,
			PPS:     spec.Rate,
			Proto:   spec.Proto,
			Fill:    spec.Fill,
			Key:     spec.Key,
			Batch:   spec.Batch,
		},
		Shards:      spec.Shards,
		RecordPaths: true,
		InterruptAt: spec.Deadline,
	}
}

// soloRun executes one campaign bare — no supervisor — on a fresh
// identically-seeded, identically-faulted universe through the same
// opener discipline. Supervised runs must match it byte for byte.
func soloRun(t testing.TB, seed int64, fc *faultsim.Config, spec CampaignSpec) (*probe.Store, core.CampaignStats, error) {
	t.Helper()
	env := newTestEnv(seed, fc)
	factory, err := env.opener(&spec)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewCampaign(coreConfigOf(spec), factory).Run()
}

// testSpec is the shared campaign shape: big enough to shard and
// interrupt mid-flight, small enough to keep the suite fast.
func testSpec(tenant, name string, targets []netip.Addr) CampaignSpec {
	return CampaignSpec{
		Tenant: tenant, Name: name, Vantage: "US-EDU-1",
		Targets: targets, Rate: 500, MaxTTL: 12, Key: 11, Fill: true,
	}
}

// counterVal reads a counter that must exist in the snapshot.
func counterVal(t *testing.T, snap telemetry.Snapshot, name string) int64 {
	t.Helper()
	v, ok := snap.Counter(name)
	if !ok {
		t.Fatalf("counter %s missing", name)
	}
	return v
}

func drainAll(t *testing.T, s *Supervisor) []Drained {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, err := s.Drain(ctx)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	return out
}

// TestDispatchOrder pins the deterministic dispatch rule as a pure
// function of queue contents: priority, then fair share by running
// count, then submission order — independent of queue layout.
func TestDispatchOrder(t *testing.T) {
	s := &Supervisor{tenants: map[string]*tenantState{
		"hi":    {cfg: Tenant{Name: "hi", Priority: 2}},
		"a":     {cfg: Tenant{Name: "a", Priority: 1}},
		"busy":  {cfg: Tenant{Name: "busy", Priority: 1}, running: 2},
		"quiet": {cfg: Tenant{Name: "quiet", Priority: 1}},
	}}
	mk := func(seq uint64, tenant string) *job {
		return &job{seq: seq, spec: CampaignSpec{Tenant: tenant, Name: "c"}}
	}
	// Priority beats everything, whatever the queue position.
	s.queue = []*job{mk(0, "a"), mk(1, "busy"), mk(2, "hi")}
	if got := s.queue[s.nextLocked()].spec.Tenant; got != "hi" {
		t.Fatalf("priority pick = %s", got)
	}
	// Equal priority: the tenant with fewer running campaigns wins.
	s.queue = []*job{mk(0, "busy"), mk(1, "quiet")}
	if got := s.queue[s.nextLocked()].spec.Tenant; got != "quiet" {
		t.Fatalf("fair-share pick = %s", got)
	}
	// Full tie: submission order.
	s.queue = []*job{mk(7, "a"), mk(3, "quiet"), mk(5, "a")}
	if got := s.queue[s.nextLocked()].seq; got != 3 {
		t.Fatalf("seq pick = %d", got)
	}
}

// TestBreakerSet pins the circuit breaker's state machine: threshold
// trip, cooldown, single half-open trial, re-trip, and recovery.
func TestBreakerSet(t *testing.T) {
	b := newBreakerSet(2, 50*time.Millisecond)
	if !b.admit("V") || b.state("V") != BreakerClosed {
		t.Fatal("fresh vantage not closed")
	}
	if b.failure("V") {
		t.Fatal("first failure tripped early")
	}
	if !b.failure("V") {
		t.Fatal("threshold failure did not trip")
	}
	if b.admit("V") || b.state("V") != BreakerOpen {
		t.Fatal("open breaker admitted")
	}
	time.Sleep(60 * time.Millisecond)
	if b.state("V") != BreakerHalfOpen {
		t.Fatal("cooldown did not half-open")
	}
	if !b.admit("V") {
		t.Fatal("half-open refused the trial")
	}
	if b.admit("V") {
		t.Fatal("second concurrent trial admitted")
	}
	if !b.failure("V") {
		t.Fatal("failed trial did not re-trip")
	}
	if b.admit("V") {
		t.Fatal("re-opened breaker admitted")
	}
	time.Sleep(60 * time.Millisecond)
	if !b.admit("V") {
		t.Fatal("second trial refused")
	}
	b.success("V")
	if b.state("V") != BreakerClosed || !b.admit("V") {
		t.Fatal("successful trial did not close the breaker")
	}
}

// TestAdmissionControl walks every typed rejection, then drains with
// one campaign wedged pre-run and two queued: the queued pair comes
// back as bare specs, the wedged one as a checkpoint artifact.
func TestAdmissionControl(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	const seed = 4401
	env := newTestEnv(seed, nil)
	targets := schedTargets(seed, 16)
	gate := make(chan struct{})
	op := func(spec *CampaignSpec) (core.ConnFactory, error) {
		<-gate
		return env.opener(spec)
	}
	reg := telemetry.NewRegistry()
	s, err := New(Config{
		Opener: op, Workers: 1, QueueLimit: 2, Telemetry: reg,
		Tenants: []Tenant{{Name: "alpha", RateBudget: 1500}, {Name: "beta"}},
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := s.Submit(testSpec("nobody", "c", targets)); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: %v", err)
	}
	sp := testSpec("alpha", "run", targets)
	sp.Rate = 1000
	h1, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to dequeue it (it then blocks in the gated
	// opener) so the queue-limit checks below see an empty queue.
	for deadline := time.Now().Add(5 * time.Second); ; time.Sleep(time.Millisecond) {
		st := s.Status()
		if len(st) > 0 && st[0].State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first campaign never dispatched")
		}
	}
	if _, err := s.Submit(sp); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate: %v", err)
	}
	big := testSpec("alpha", "big", targets)
	big.Rate = 600 // 1000 reserved of 1500
	if _, err := s.Submit(big); !errors.Is(err, ErrRateBudget) {
		t.Fatalf("rate budget: %v", err)
	}
	if _, err := s.Submit(testSpec("beta", "q1", targets)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(testSpec("beta", "q2", targets)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(testSpec("beta", "q3", targets)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue full: %v", err)
	}
	if _, err := s.Submit(CampaignSpec{Tenant: "beta", Name: "bad", Resume: []byte("junk")}); !errors.Is(err, core.ErrCheckpoint) {
		t.Fatalf("bad artifact: %v", err)
	}

	// Drain with the running campaign still blocked in its opener: the
	// two queued campaigns flush immediately as bare specs; the running
	// one is interrupted the instant its campaign exists and drains to
	// a checkpoint artifact.
	type drainOut struct {
		ds  []Drained
		err error
	}
	done := make(chan drainOut, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		ds, err := s.Drain(ctx)
		done <- drainOut{ds, err}
	}()
	for !s.isDraining() {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(testSpec("beta", "late", targets)); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining: %v", err)
	}
	close(gate)
	out := <-done
	if out.err != nil {
		t.Fatalf("drain: %v", out.err)
	}
	var specs, artifacts int
	for _, d := range out.ds {
		if d.Artifact == nil {
			specs++
		} else {
			artifacts++
			if _, err := core.InspectCheckpoint(d.Artifact); err != nil {
				t.Fatalf("drained artifact: %v", err)
			}
		}
	}
	if specs != 2 || artifacts != 1 {
		t.Fatalf("drained %d specs + %d artifacts, want 2 + 1", specs, artifacts)
	}
	res := h1.Result()
	if res == nil || res.State != StateDrained {
		t.Fatalf("running campaign result = %+v", res)
	}
	if _, err := s.Drain(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("second drain: %v", err)
	}
	snap := reg.Snapshot()
	if got := counterVal(t, snap, "sched_submitted_total"); got != 3 {
		t.Fatalf("submitted = %d", got)
	}
	if got := counterVal(t, snap, "sched_rejected_total"); got != 6 {
		t.Fatalf("rejected = %d", got)
	}
	if got := counterVal(t, snap, "sched_drained_total"); got != 3 {
		t.Fatalf("drained = %d", got)
	}
}

// TestDeadlineIncomplete: a campaign overrunning its virtual deadline
// degrades to Incomplete with partial results, without tripping the
// breaker — a deadline is tenant policy, not vantage fault.
func TestDeadlineIncomplete(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	const seed = 4402
	env := newTestEnv(seed, nil)
	s, err := New(Config{Opener: env.opener, Tenants: []Tenant{{Name: "t"}}})
	if err != nil {
		t.Fatal(err)
	}
	sp := testSpec("t", "slow", schedTargets(seed, 32))
	sp.Shards, sp.Batch = 2, 16
	sp.Deadline = 120 * time.Millisecond
	h, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.State != StateIncomplete || res.Reason != "deadline" || res.Err != nil {
		t.Fatalf("deadline result = %+v", res)
	}
	if res.Store == nil || res.Stats.ProbesSent == 0 {
		t.Fatal("no partial results retained")
	}
	if st := s.BreakerState("US-EDU-1"); st != BreakerClosed {
		t.Fatalf("breaker = %v after deadline", st)
	}
	drainAll(t, s)
}

// wedgeConn wall-blocks one send mid-campaign — a hung socket, not a
// simulated fault, so virtual time and the result bytes are untouched.
// Both serial and batched paths are overridden; everything else
// (including checkpoint pending-reply export) promotes from the
// embedded vantage.
type wedgeConn struct {
	*netsim.Vantage
	sends  int
	wedged *atomic.Bool
	block  time.Duration
}

func (w *wedgeConn) maybeWedge() {
	w.sends++
	if w.sends == 5 && w.wedged.CompareAndSwap(false, true) {
		time.Sleep(w.block)
	}
}

func (w *wedgeConn) Send(pkt []byte) error {
	w.maybeWedge()
	return w.Vantage.Send(pkt)
}

func (w *wedgeConn) SendBatch(pkts [][]byte, gap time.Duration) (int, bool, error) {
	w.maybeWedge()
	return w.Vantage.SendBatch(pkts, gap)
}

// TestWatchdogFailover: a campaign whose connection wall-hangs stops
// heartbeating; the watchdog interrupts it, the supervisor checkpoints
// and resumes on fresh connections, and the final store is
// byte-identical to an unsupervised run — failover is invisible in the
// results.
func TestWatchdogFailover(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	const seed = 4403
	env := newTestEnv(seed, nil)
	targets := schedTargets(seed, 24)
	var attempts atomic.Int32
	var wedged atomic.Bool
	op := func(spec *CampaignSpec) (core.ConnFactory, error) {
		inner, err := env.opener(spec)
		if err != nil {
			return nil, err
		}
		if attempts.Add(1) > 1 {
			return inner, nil // post-failover attempts get clean conns
		}
		return func(shard int, start time.Duration) probe.Conn {
			v := inner(shard, start).(*netsim.Vantage)
			return &wedgeConn{Vantage: v, wedged: &wedged, block: 400 * time.Millisecond}
		}, nil
	}
	reg := telemetry.NewRegistry()
	s, err := New(Config{
		Opener: op, Tenants: []Tenant{{Name: "t"}}, Telemetry: reg,
		WatchdogPoll: 5 * time.Millisecond, StallBudget: 100 * time.Millisecond,
		BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := testSpec("t", "wedge", targets) // 1 shard: the hung conn is the only heartbeat source
	h, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.State != StateCompleted || res.Retries != 1 {
		t.Fatalf("failover result: state %v retries %d err %v reason %q", res.State, res.Retries, res.Err, res.Reason)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("opener calls = %d", got)
	}
	if !wedged.Load() {
		t.Fatal("wedge never fired")
	}
	bare, bareStats, bareErr := soloRun(t, seed, nil, sp)
	if bareErr != nil {
		t.Fatal(bareErr)
	}
	if !res.Store.Equal(bare) {
		t.Fatal("failover store differs from bare run")
	}
	if res.Stats.ProbesSent != bareStats.ProbesSent || res.Stats.Replies != bareStats.Replies {
		t.Fatalf("failover stats %+v vs bare %+v", res.Stats.Stats, bareStats.Stats)
	}
	snap := reg.Snapshot()
	if got := counterVal(t, snap, "sched_watchdog_interrupts_total"); got != 1 {
		t.Fatalf("watchdog interrupts = %d", got)
	}
	if got := counterVal(t, snap, "sched_retries_total"); got != 1 {
		t.Fatalf("retries = %d", got)
	}
	drainAll(t, s)
}

// TestBreakerLifecycle: consecutive campaign failures on one vantage
// trip its breaker open (rejecting submissions), the cooldown admits a
// half-open trial, and a successful trial closes it again.
func TestBreakerLifecycle(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	const seed = 4404
	env := newTestEnv(seed, nil)
	targets := schedTargets(seed, 12)
	var failing atomic.Bool
	failing.Store(true)
	op := func(spec *CampaignSpec) (core.ConnFactory, error) {
		if failing.Load() {
			return nil, errors.New("vantage offline")
		}
		return env.opener(spec)
	}
	reg := telemetry.NewRegistry()
	s, err := New(Config{
		Opener: op, Workers: 1, Tenants: []Tenant{{Name: "t"}}, Telemetry: reg,
		BreakerThreshold: 2, BreakerCooldown: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(name string) *Result {
		h, err := s.Submit(testSpec("t", name, targets))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := h.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := run("f1"); res.State != StateIncomplete || res.Reason != "open-failed" {
		t.Fatalf("f1 = %+v", res)
	}
	if st := s.BreakerState("US-EDU-1"); st != BreakerClosed {
		t.Fatalf("breaker after one failure = %v", st)
	}
	if res := run("f2"); res.State != StateIncomplete {
		t.Fatalf("f2 = %+v", res)
	}
	if st := s.BreakerState("US-EDU-1"); st != BreakerOpen {
		t.Fatalf("breaker after threshold = %v", st)
	}
	if _, err := s.Submit(testSpec("t", "f3", targets)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker submit: %v", err)
	}
	if got := counterVal(t, reg.Snapshot(), "sched_breaker_open_total"); got != 1 {
		t.Fatalf("breaker-open count = %d", got)
	}

	time.Sleep(160 * time.Millisecond)
	if st := s.BreakerState("US-EDU-1"); st != BreakerHalfOpen {
		t.Fatalf("breaker after cooldown = %v", st)
	}
	failing.Store(false)
	if res := run("trial"); res.State != StateCompleted {
		t.Fatalf("trial = %+v", res)
	}
	if st := s.BreakerState("US-EDU-1"); st != BreakerClosed {
		t.Fatalf("breaker after trial = %v", st)
	}
	drainAll(t, s)
}
