package sched

import (
	"encoding/json"
	"io"
	"sync"

	"beholder/internal/graph"
	"beholder/internal/probe"
)

// Event is one NDJSON record on a tenant's result stream. Lifecycle
// events (submitted, started, retry, drained, completed, incomplete)
// come from the supervisor; delta events come from the per-shard graph
// observers as the campaign's topology subgraphs grow, so a tenant
// watching its stream sees discovery arrive incrementally instead of
// waiting for the final artifact.
type Event struct {
	Event    string `json:"event"`
	Tenant   string `json:"tenant"`
	Campaign string `json:"campaign"`
	Shard    int    `json:"shard,omitempty"`
	Nodes    int    `json:"nodes,omitempty"`
	Edges    int    `json:"edges,omitempty"`
	Attempt  int    `json:"attempt,omitempty"`
	Reason   string `json:"reason,omitempty"`
	Probes   int64  `json:"probes,omitempty"`
	Replies  int64  `json:"replies,omitempty"`
}

// stream is a locked NDJSON encoder over one tenant's writer. Shard
// observers emit concurrently from their own goroutines, so every event
// write is serialized here; the writer itself sees whole lines only.
type stream struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func newStream(w io.Writer) *stream {
	if w == nil {
		return nil
	}
	return &stream{enc: json.NewEncoder(w)}
}

// event encodes one record; nil streams swallow everything so callers
// never branch.
func (st *stream) event(ev Event) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	_ = st.enc.Encode(ev) // a broken tenant sink must not fail the campaign
}

// deltaObserver is the per-shard streaming hook: it folds every stored
// reply into its own topology subgraph and emits a delta event whenever
// the subgraph grows. NumNodes/NumEdges are O(1) reads, so the novelty
// check costs two comparisons per reply.
type deltaObserver struct {
	st       *stream
	g        *graph.Graph
	tenant   string
	campaign string
	shard    int
	nodes    int
	edges    int
}

func newDeltaObserver(st *stream, vantage, tenant, campaign string, shard int) *deltaObserver {
	return &deltaObserver{st: st, g: graph.New(vantage), tenant: tenant, campaign: campaign, shard: shard}
}

func (o *deltaObserver) OnReply(r probe.Reply) {
	o.g.OnReply(r)
	if n, e := o.g.NumNodes(), o.g.NumEdges(); n > o.nodes || e > o.edges {
		o.nodes, o.edges = n, e
		o.st.event(Event{Event: "delta", Tenant: o.tenant, Campaign: o.campaign,
			Shard: o.shard, Nodes: n, Edges: e})
	}
}
