// Package sched is the campaign supervisor: a long-running service
// multiplexing many concurrent tenant campaigns over shared simulated
// universes. Where core.Campaign recovers from faults *within* one run
// (shard quarantine, re-sharding, checkpoint/resume), the supervisor
// adds the service layer around it — admission control with a bounded
// queue and typed rejections, per-tenant rate budgets, deterministic
// priority/fair-share dispatch, per-campaign virtual deadlines, a
// wall-clock watchdog that interrupts wedged campaigns through the
// heartbeat core exposes (Campaign.Beat), automatic failover that
// checkpoints on interrupt and resumes through core.Resume with capped
// exponential backoff and a bounded retry budget, and a per-vantage
// circuit breaker that quarantines persistently faulty vantages
// instead of letting them wedge the service.
//
// The supervision layer is deliberately invisible in the results: a
// supervised campaign's store is byte-identical to the same campaign
// run bare, because everything the supervisor does — interrupt,
// checkpoint, back off, resume on fresh connections — commutes with
// the deterministic virtual-time schedule (the chaos soak pins this
// under concurrent crash/stall/transient faults). Graceful shutdown
// drains running campaigns to checkpoint artifacts that a restarted
// supervisor resumes byte-identically.
package sched

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"beholder/internal/core"
	"beholder/internal/graph"
	"beholder/internal/probe"
	"beholder/internal/telemetry"
	"beholder/internal/wire"
)

// Opener builds the connection factory for one campaign attempt. It is
// called once per attempt — the initial run and again for every
// checkpoint-resume failover — and must return a factory producing
// fresh connections positioned so that the campaign's epoch is virtual
// time zero: shard s's connection opens its clock at exactly the start
// offset the factory is called with. That pin is what makes a
// supervised campaign's store byte-identical to the same campaign run
// bare on a fresh universe. Implementations must be safe for
// concurrent calls (campaign attempts run on worker goroutines) and
// must serialize any shared vantage mutation internally.
type Opener func(spec *CampaignSpec) (core.ConnFactory, error)

// Tenant declares one paying (or at least rate-accounted) user of the
// supervisor.
type Tenant struct {
	// Name identifies the tenant in specs, metrics, and streams.
	Name string
	// RateBudget caps the summed probing rate (PPS) of the tenant's
	// admitted campaigns — queued and running both; admission reserves
	// the rate, completion releases it. Zero means unlimited.
	RateBudget float64
	// Priority orders dispatch: higher-priority tenants' campaigns
	// start first. Equal priorities share fairly (fewest-running tenant
	// first, then submission order).
	Priority int
}

// Config parameterizes a Supervisor.
type Config struct {
	// Opener builds per-attempt connection factories. Required.
	Opener Opener
	// Tenants lists the admissible tenants. Submissions naming anyone
	// else are rejected with ErrUnknownTenant.
	Tenants []Tenant
	// Workers is the number of campaigns run concurrently. Default 2.
	Workers int
	// QueueLimit bounds the admitted-but-not-running queue; submissions
	// past it are rejected with ErrQueueFull. Default 32.
	QueueLimit int
	// WatchdogPoll is the wall-clock cadence at which the watchdog
	// samples each running campaign's heartbeat. Default 10ms.
	WatchdogPoll time.Duration
	// StallBudget is how long a running campaign's heartbeat may sit
	// still (wall clock) before the watchdog declares it stalled,
	// interrupts it, and fails over from the checkpoint. Default 2s.
	StallBudget time.Duration
	// MaxRetries bounds watchdog failovers per campaign; exhaustion
	// degrades the campaign to StateIncomplete. Default 2.
	MaxRetries int
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between failover attempts: attempt k waits
	// min(BackoffBase << (k-1), BackoffMax). Defaults 10ms and 500ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// vantage's circuit breaker; BreakerCooldown is how long it stays
	// open before admitting a half-open trial. Defaults 3 and 1s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// CheckpointEvery, when positive, periodically snapshots each
	// running campaign: after that much wall time the attempt is
	// interrupted at a probe boundary, its checkpoint artifact is
	// handed to CheckpointSink, and the campaign resumes from the
	// artifact on fresh connections — the same interrupt/resume cycle
	// the watchdog uses, so results stay byte-identical to an
	// uninterrupted run. A process killed between snapshots loses at
	// most one interval of virtual progress. Zero disables periodic
	// checkpointing (drain-only snapshots, the previous behavior).
	CheckpointEvery time.Duration
	// CheckpointSink receives each periodic checkpoint artifact. A
	// sink error is counted (sched_checkpoint_sink_errors_total) and
	// the campaign keeps running — losing a snapshot degrades crash
	// durability, not the run.
	CheckpointSink func(spec *CampaignSpec, artifact []byte) error
	// Telemetry, when non-nil, receives the sched_* metrics and every
	// campaign's hot-path yarrp_* metrics.
	Telemetry *telemetry.Registry
}

func (c *Config) setDefaults() error {
	if c.Opener == nil {
		return errors.New("sched: Config.Opener is required")
	}
	if len(c.Tenants) == 0 {
		return errors.New("sched: no tenants configured")
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 32
	}
	if c.WatchdogPoll <= 0 {
		c.WatchdogPoll = 10 * time.Millisecond
	}
	if c.StallBudget <= 0 {
		c.StallBudget = 2 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 2
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 500 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	return nil
}

// CampaignSpec is one submitted campaign. The probing parameters
// mirror core.Config; the supervisor owns sharding, deadlines, and
// retry policy around them.
type CampaignSpec struct {
	// Tenant names the submitting tenant (must be configured).
	Tenant string
	// Name identifies the campaign within the tenant; (Tenant, Name)
	// must be unique among active campaigns.
	Name string
	// Vantage names the vantage to probe from; the Opener resolves it.
	// It is also the circuit-breaker key and the campaign tag prefix
	// fault rules address (Tag).
	Vantage string
	// Targets, Rate, MinTTL, MaxTTL, Proto, Fill, Key, Shards, Batch
	// parameterize the underlying campaign (zero values pick the core
	// defaults; Rate zero means 1000 PPS).
	Targets        []netip.Addr
	Rate           float64
	MinTTL, MaxTTL uint8
	Proto          uint8
	Fill           bool
	Key            uint64
	Shards         int
	Batch          int
	// Deadline, when nonzero, interrupts the campaign at that virtual
	// instant (relative to the campaign epoch) and degrades it to
	// StateIncomplete with reason "deadline".
	Deadline time.Duration
	// Stream, when non-nil, receives the tenant's NDJSON event stream:
	// lifecycle events plus incremental graph deltas as the campaign's
	// shard observers see new topology. Writes are serialized; the
	// writer itself need not be concurrency-safe.
	Stream io.Writer
	// Resume, when non-nil, is a checkpoint artifact to continue
	// instead of starting fresh — the restart half of a drained
	// supervisor. The artifact supplies targets and tuning; the spec
	// supplies tenant, vantage, stream, and policy.
	Resume []byte
}

// Tag returns the campaign tag fault rules address: tenant-qualified
// so two tenants' same-named campaigns stay distinct.
func (s *CampaignSpec) Tag() string { return s.Tenant + "/" + s.Name }

// effRate is the admission-ledger rate: the core default when unset.
func (s *CampaignSpec) effRate() float64 {
	if s.Rate > 0 {
		return s.Rate
	}
	return 1000
}

// State is a campaign's lifecycle position.
type State uint8

const (
	// StateQueued: admitted, waiting for a worker.
	StateQueued State = iota
	// StateRunning: probing (or failing over between attempts).
	StateRunning
	// StateCompleted: ran to completion; the store is final. The run
	// may still have been degraded by shard quarantine — Stats says.
	StateCompleted
	// StateIncomplete: terminated without completing — deadline,
	// watchdog-retry exhaustion, open breaker, or a fatal error.
	// Partial results are retained.
	StateIncomplete
	// StateDrained: shut down gracefully to a checkpoint artifact (or,
	// for never-started campaigns, to its spec) for a future
	// supervisor to resume.
	StateDrained
)

// String names the state for status reports and stream events.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateCompleted:
		return "completed"
	case StateIncomplete:
		return "incomplete"
	case StateDrained:
		return "drained"
	}
	return "unknown"
}

// Typed admission rejections. Submit returns exactly one of these (or
// an artifact-validation error) when it refuses a spec.
var (
	ErrQueueFull     = errors.New("sched: admission queue full")
	ErrUnknownTenant = errors.New("sched: unknown tenant")
	ErrRateBudget    = errors.New("sched: tenant rate budget exceeded")
	ErrDraining      = errors.New("sched: supervisor is draining")
	ErrDuplicate     = errors.New("sched: tenant already has an active campaign with this name")
	ErrBreakerOpen   = errors.New("sched: vantage circuit breaker is open")
)

// Result is a finished campaign's outcome.
type Result struct {
	Tenant   string
	Campaign string
	State    State
	// Reason qualifies non-completed states: "deadline",
	// "watchdog-exhausted", "breaker-open", "open-failed", "fatal",
	// "drained", "drained-queued".
	Reason string
	// Store and Stats are the merged results (partial for Incomplete,
	// nil for queued-drained campaigns).
	Store *probe.Store
	Stats core.CampaignStats
	// Graph is the topology graph derived from Store (nil without one).
	Graph *graph.Graph
	// Retries counts watchdog failovers performed.
	Retries int
	// Artifact is the drain checkpoint (StateDrained only; nil when
	// the campaign never started).
	Artifact []byte
	// Err is the terminal error for "fatal"/"open-failed" outcomes.
	Err error
}

// Handle tracks one admitted campaign.
type Handle struct {
	spec CampaignSpec
	done chan struct{}

	mu  sync.Mutex
	res *Result
}

// Spec returns the submitted spec (Resume artifact elided).
func (h *Handle) Spec() CampaignSpec {
	sp := h.spec
	sp.Resume = nil
	return sp
}

// Done is closed when the campaign reaches a terminal state.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Result returns the terminal outcome, nil while the campaign is live.
func (h *Handle) Result() *Result {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.res
}

// Wait blocks until the campaign terminates or ctx expires.
func (h *Handle) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-h.done:
		return h.Result(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Drained is one campaign surviving a graceful shutdown: a checkpoint
// artifact for interrupted runs, or just the spec for campaigns that
// never started. Resubmitting the spec (with Resume set to Artifact
// when present) to a fresh supervisor continues the campaign.
type Drained struct {
	Spec     CampaignSpec
	Artifact []byte
}

// CampaignStatus is one live or terminal campaign's status line.
type CampaignStatus struct {
	Tenant   string
	Campaign string
	Vantage  string
	State    State
	Reason   string
	Retries  int
}

// tenantState is a tenant's live admission ledger.
type tenantState struct {
	cfg      Tenant
	admitted float64 // summed effRate of queued+running campaigns
	inflight int     // queued+running campaign count
	running  int     // running campaign count (fair-share key)
}

// job is one admitted campaign's supervision state.
type job struct {
	seq     uint64
	spec    CampaignSpec
	h       *Handle
	st      *stream
	state   State
	reason  string
	retries int
	// camp is the live campaign of the current attempt, for Drain and
	// watchdog interrupts.
	camp atomic.Pointer[core.Campaign]
}

// schedMetrics bundles the supervisor's telemetry instruments; all nil
// when no registry is configured.
type schedMetrics struct {
	submitted, rejected, completed, incomplete *telemetry.Counter
	drained, retries, watchdog, breakerOpened  *telemetry.Counter
	checkpoints, ckptSinkErrors                *telemetry.Counter
	queueDepth, running                        *telemetry.Gauge
}

// Supervisor is the multi-tenant campaign scheduler. Create with New,
// submit with Submit, shut down with Drain.
type Supervisor struct {
	cfg     Config
	breaker *breakerSet
	met     schedMetrics
	tel     *telemetry.Registry

	mu       sync.Mutex
	cond     *sync.Cond
	tenants  map[string]*tenantState
	active   map[string]*job // Tag() -> live job
	all      []*job          // every job ever admitted, submission order
	queue    []*job
	nextSeq  uint64
	draining bool
	stopping bool

	drainCh chan struct{} // closed when draining starts
	wg      sync.WaitGroup
}

// New validates the configuration and starts the worker pool.
func New(cfg Config) (*Supervisor, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	s := &Supervisor{
		cfg:     cfg,
		breaker: newBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown),
		tel:     cfg.Telemetry,
		tenants: make(map[string]*tenantState),
		active:  make(map[string]*job),
		drainCh: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	for _, t := range cfg.Tenants {
		if t.Name == "" {
			return nil, errors.New("sched: tenant with empty name")
		}
		if _, dup := s.tenants[t.Name]; dup {
			return nil, fmt.Errorf("sched: duplicate tenant %q", t.Name)
		}
		s.tenants[t.Name] = &tenantState{cfg: t}
	}
	if r := cfg.Telemetry; r != nil {
		s.met = schedMetrics{
			submitted:      r.Counter("sched_submitted_total"),
			rejected:       r.Counter("sched_rejected_total"),
			completed:      r.Counter("sched_completed_total"),
			incomplete:     r.Counter("sched_incomplete_total"),
			drained:        r.Counter("sched_drained_total"),
			retries:        r.Counter("sched_retries_total"),
			watchdog:       r.Counter("sched_watchdog_interrupts_total"),
			breakerOpened:  r.Counter("sched_breaker_open_total"),
			checkpoints:    r.Counter("sched_checkpoints_total"),
			ckptSinkErrors: r.Counter("sched_checkpoint_sink_errors_total"),
			queueDepth:     r.Gauge("sched_queue_depth"),
			running:        r.Gauge("sched_running"),
		}
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Submit admits one campaign, or rejects it with a typed error:
// ErrDraining, ErrUnknownTenant, ErrDuplicate, ErrBreakerOpen,
// ErrRateBudget, ErrQueueFull, or an artifact-validation error for
// unusable Resume artifacts.
func (s *Supervisor) Submit(spec CampaignSpec) (*Handle, error) {
	if spec.Resume != nil {
		// Validate the artifact up front so a corrupt checkpoint is a
		// typed admission failure, not a late worker-side surprise.
		if _, err := core.InspectCheckpoint(spec.Resume); err != nil {
			s.reject()
			return nil, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.stopping {
		s.reject()
		return nil, ErrDraining
	}
	ts := s.tenants[spec.Tenant]
	if ts == nil {
		s.reject()
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, spec.Tenant)
	}
	if _, dup := s.active[spec.Tag()]; dup {
		s.reject()
		return nil, fmt.Errorf("%w: %s", ErrDuplicate, spec.Tag())
	}
	if s.breaker.state(spec.Vantage) == BreakerOpen {
		// A closed (or half-open) breaker admits to the queue; the
		// half-open trial slot is claimed at dispatch, not here.
		s.reject()
		return nil, fmt.Errorf("%w: %s", ErrBreakerOpen, spec.Vantage)
	}
	if b := ts.cfg.RateBudget; b > 0 && ts.admitted+spec.effRate() > b {
		s.reject()
		return nil, fmt.Errorf("%w: tenant %s at %.0f of %.0f pps", ErrRateBudget, spec.Tenant, ts.admitted, b)
	}
	if len(s.queue) >= s.cfg.QueueLimit {
		s.reject()
		return nil, ErrQueueFull
	}

	j := &job{
		seq:   s.nextSeq,
		spec:  spec,
		h:     &Handle{spec: spec, done: make(chan struct{})},
		st:    newStream(spec.Stream),
		state: StateQueued,
	}
	s.nextSeq++
	ts.admitted += spec.effRate()
	ts.inflight++
	s.active[spec.Tag()] = j
	s.all = append(s.all, j)
	s.queue = append(s.queue, j)
	if s.met.submitted != nil {
		s.met.submitted.Inc()
		s.met.queueDepth.Set(int64(len(s.queue)))
	}
	if s.tel != nil {
		s.tel.Counter("sched_tenant_submitted_total_" + spec.Tenant).Inc()
	}
	j.st.event(Event{Event: "submitted", Tenant: spec.Tenant, Campaign: spec.Name})
	s.cond.Signal()
	return j.h, nil
}

func (s *Supervisor) reject() {
	if s.met.rejected != nil {
		s.met.rejected.Inc()
	}
}

// Status reports every admitted campaign in submission order.
func (s *Supervisor) Status() []CampaignStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CampaignStatus, 0, len(s.all))
	for _, j := range s.all {
		out = append(out, CampaignStatus{
			Tenant:   j.spec.Tenant,
			Campaign: j.spec.Name,
			Vantage:  j.spec.Vantage,
			State:    j.state,
			Reason:   j.reason,
			Retries:  j.retries,
		})
	}
	return out
}

// BreakerState reports a vantage's circuit-breaker position.
func (s *Supervisor) BreakerState(vantage string) BreakerState {
	return s.breaker.state(vantage)
}

// nextLocked picks the job to dispatch — a pure function of the queue
// contents, so dispatch order is deterministic whatever the goroutine
// interleaving that produced the queue: highest tenant priority first,
// then the tenant with the fewest running campaigns (fair share), then
// submission order.
func (s *Supervisor) nextLocked() int {
	best := -1
	for i, j := range s.queue {
		if best < 0 {
			best = i
			continue
		}
		b := s.queue[best]
		tp, bp := s.tenants[j.spec.Tenant], s.tenants[b.spec.Tenant]
		switch {
		case tp.cfg.Priority != bp.cfg.Priority:
			if tp.cfg.Priority > bp.cfg.Priority {
				best = i
			}
		case tp.running != bp.running:
			if tp.running < bp.running {
				best = i
			}
		case j.seq < b.seq:
			best = i
		}
	}
	return best
}

// worker pulls and runs campaigns until the supervisor stops.
func (s *Supervisor) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.stopping && (s.draining || len(s.queue) == 0) {
			s.cond.Wait()
		}
		if s.stopping {
			s.mu.Unlock()
			return
		}
		i := s.nextLocked()
		j := s.queue[i]
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		j.state = StateRunning
		ts := s.tenants[j.spec.Tenant]
		ts.running++
		if s.met.queueDepth != nil {
			s.met.queueDepth.Set(int64(len(s.queue)))
			s.met.running.Set(s.runningLocked())
		}
		s.mu.Unlock()
		s.runJob(j)
	}
}

func (s *Supervisor) runningLocked() int64 {
	var n int64
	for _, ts := range s.tenants {
		n += int64(ts.running)
	}
	return n
}

func (s *Supervisor) isDraining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// campaignConfig maps a spec onto the core campaign configuration.
func (s *Supervisor) campaignConfig(j *job) core.CampaignConfig {
	sp := &j.spec
	return core.CampaignConfig{
		Config: core.Config{
			Targets: sp.Targets,
			MinTTL:  sp.MinTTL,
			MaxTTL:  sp.MaxTTL,
			PPS:     sp.Rate,
			Proto:   sp.Proto,
			Fill:    sp.Fill,
			Key:     sp.Key,
			Batch:   sp.Batch,
		},
		Shards:      sp.Shards,
		RecordPaths: true,
		Telemetry:   s.tel,
		NewObserver: s.observerFactory(j),
		InterruptAt: sp.Deadline,
		// Interrupted partial stores are folded lazily (MergedStore) on
		// the terminal paths that actually publish them; the periodic
		// checkpoint-and-continue path never asks, so snapshot cycles
		// skip the fold.
		DeferMerge: true,
	}
}

// observerFactory builds the per-shard streaming observers; nil when
// the tenant attached no stream (so core skips observer plumbing).
func (s *Supervisor) observerFactory(j *job) func(shard int) probe.Observer {
	if j.st == nil {
		return nil
	}
	return func(shard int) probe.Observer {
		return newDeltaObserver(j.st, j.spec.Vantage, j.spec.Tenant, j.spec.Name, shard)
	}
}

// runJob drives one campaign through its attempts: run, and on a
// watchdog interrupt checkpoint → back off → resume on fresh
// connections, bounded by the retry budget.
func (s *Supervisor) runJob(j *job) {
	if !s.breaker.admit(j.spec.Vantage) {
		// The vantage's breaker opened (or its half-open trial slot was
		// claimed) while this campaign sat queued.
		s.finalize(j, &Result{State: StateIncomplete, Reason: "breaker-open"})
		return
	}
	artifact := j.spec.Resume
	var rewound *core.Campaign
	attempt := 0
	for {
		attempt++
		var camp *core.Campaign
		if rewound != nil {
			// Periodic-checkpoint continuation handed over in-process; the
			// durable artifact was persisted but needs no decoding.
			camp, rewound = rewound, nil
		} else {
			factory, err := s.cfg.Opener(&j.spec)
			if err != nil {
				s.breakerFailure(j)
				s.finalize(j, &Result{State: StateIncomplete, Reason: "open-failed", Err: err})
				return
			}
			if artifact == nil {
				camp = core.NewCampaign(s.campaignConfig(j), factory)
			} else {
				camp, err = core.Resume(artifact, core.ResumeConfig{
					NewObserver: s.observerFactory(j),
					Telemetry:   s.tel,
					InterruptAt: j.spec.Deadline,
				}, factory)
				if err != nil {
					s.breakerFailure(j)
					s.finalize(j, &Result{State: StateIncomplete, Reason: "fatal", Err: err})
					return
				}
			}
		}
		j.camp.Store(camp)
		if s.isDraining() {
			// Drain may have started between dispatch and campaign
			// construction; interrupting before Run makes the very first
			// stop poll capture, keeping the drain bounded.
			camp.Interrupt()
		}
		j.st.event(Event{Event: "started", Tenant: j.spec.Tenant, Campaign: j.spec.Name, Attempt: attempt})

		store, stats, runErr, fired, ckptReq := s.runAttempt(camp)
		switch {
		case runErr == nil:
			res := &Result{State: StateCompleted, Store: store, Stats: stats}
			if len(stats.Quarantined) > 0 || len(stats.Incomplete) > 0 {
				// Completed through recovery: the result stands, but the
				// vantage misbehaved — that history feeds the breaker.
				s.breakerFailure(j)
			} else {
				s.breaker.success(j.spec.Vantage)
			}
			s.finalize(j, res)
			return

		case errors.Is(runErr, core.ErrInterrupted):
			// The campaign ran with DeferMerge, so the interrupted store
			// arrives nil; terminal paths fold it on demand, and the
			// periodic continuation below skips the fold entirely.
			art, ckErr := camp.Checkpoint()
			switch {
			case s.isDraining():
				if ckErr != nil {
					// Quarantine-degraded mid-drain: nothing resumable to
					// hand over; keep the partial results.
					s.finalize(j, &Result{State: StateIncomplete, Reason: "fatal", Store: camp.MergedStore(), Stats: stats, Err: ckErr})
					return
				}
				s.finalize(j, &Result{State: StateDrained, Reason: "drained", Store: camp.MergedStore(), Stats: stats, Artifact: art})
				return
			case fired:
				if s.met.watchdog != nil {
					s.met.watchdog.Inc()
				}
				if ckErr != nil {
					s.breakerFailure(j)
					s.finalize(j, &Result{State: StateIncomplete, Reason: "fatal", Store: camp.MergedStore(), Stats: stats, Err: ckErr})
					return
				}
				if j.retries >= s.cfg.MaxRetries {
					s.breakerFailure(j)
					s.finalize(j, &Result{State: StateIncomplete, Reason: "watchdog-exhausted", Store: camp.MergedStore(), Stats: stats})
					return
				}
				j.retries++
				if s.met.retries != nil {
					s.met.retries.Inc()
				}
				j.st.event(Event{Event: "retry", Tenant: j.spec.Tenant, Campaign: j.spec.Name, Attempt: attempt, Reason: "watchdog"})
				if s.backoff(j.retries) {
					// Drain began during the backoff; the checkpoint in
					// hand is the drain artifact.
					s.finalize(j, &Result{State: StateDrained, Reason: "drained", Store: camp.MergedStore(), Stats: stats, Artifact: art})
					return
				}
				artifact = art
				continue
			case ckptReq:
				// Periodic snapshot: persist the artifact and resume the
				// same attempt loop. This is not a failover — no retry is
				// consumed and no backoff is taken; the continuation picks
				// up from the exact probe boundary, so the final result
				// stays byte-identical to an uninterrupted run.
				if ckErr != nil {
					// The interrupt landed on a quarantine-degraded run
					// that cannot serialize; without an artifact the run
					// cannot continue. Degrade like the watchdog's fatal
					// path.
					s.breakerFailure(j)
					s.finalize(j, &Result{State: StateIncomplete, Reason: "fatal", Store: camp.MergedStore(), Stats: stats, Err: ckErr})
					return
				}
				if s.met.checkpoints != nil {
					s.met.checkpoints.Inc()
				}
				if s.cfg.CheckpointSink != nil {
					if err := s.cfg.CheckpointSink(&j.spec, art); err != nil && s.met.ckptSinkErrors != nil {
						s.met.ckptSinkErrors.Inc()
					}
				}
				j.st.event(Event{Event: "checkpoint", Tenant: j.spec.Tenant, Campaign: j.spec.Name, Attempt: attempt})
				// Continue in-process: the artifact already hit the sink,
				// so the continuation skips the decode round trip. Rewind
				// can only refuse what Checkpoint would also have refused,
				// but fall back to the artifact path on principle.
				factory, ferr := s.cfg.Opener(&j.spec)
				if ferr != nil {
					s.breakerFailure(j)
					s.finalize(j, &Result{State: StateIncomplete, Reason: "open-failed", Err: ferr})
					return
				}
				if next, rwErr := camp.Rewind(core.ResumeConfig{
					NewObserver: s.observerFactory(j),
					Telemetry:   s.tel,
					InterruptAt: j.spec.Deadline,
				}, factory); rwErr == nil {
					rewound = next
				}
				artifact = art
				continue
			default:
				// The campaign's own virtual deadline fired.
				s.finalize(j, &Result{State: StateIncomplete, Reason: "deadline", Store: camp.MergedStore(), Stats: stats})
				return
			}

		default:
			s.breakerFailure(j)
			s.finalize(j, &Result{State: StateIncomplete, Reason: "fatal", Store: store, Stats: stats, Err: runErr})
			return
		}
	}
}

// runAttempt runs the campaign while the watchdog samples its
// heartbeat; fired reports whether the watchdog interrupted it, and
// ckptReq that the periodic-checkpoint timer did. At most one of the
// two interrupt sources claims an attempt: the checkpoint timer
// defers to a watchdog that has already fired, and vice versa.
func (s *Supervisor) runAttempt(camp *core.Campaign) (store *probe.Store, stats core.CampaignStats, err error, fired, ckptReq bool) {
	type runOut struct {
		store *probe.Store
		stats core.CampaignStats
		err   error
	}
	done := make(chan runOut, 1)
	go func() {
		st, cs, e := camp.Run()
		done <- runOut{st, cs, e}
	}()
	timer := time.NewTimer(s.cfg.WatchdogPoll)
	defer timer.Stop()
	var ckptCh <-chan time.Time
	if s.cfg.CheckpointEvery > 0 {
		ckptTimer := time.NewTimer(s.cfg.CheckpointEvery)
		defer ckptTimer.Stop()
		ckptCh = ckptTimer.C
	}
	lastBeat := camp.Beat()
	lastMove := time.Now()
	for {
		select {
		case out := <-done:
			return out.store, out.stats, out.err, fired, ckptReq
		case <-ckptCh:
			// Periodic snapshot: interrupt at the next probe boundary;
			// runJob checkpoints and resumes. One snapshot per attempt —
			// the resumed attempt restarts the interval. A draining or
			// already-stalled attempt is left to its own path.
			if !fired && !ckptReq && !s.isDraining() {
				ckptReq = true
				camp.Interrupt()
			}
		case <-timer.C:
			if b := camp.Beat(); b != lastBeat {
				lastBeat, lastMove = b, time.Now()
			} else if !fired && !ckptReq && time.Since(lastMove) >= s.cfg.StallBudget {
				// No stop poll within the budget: the campaign is wedged
				// (or its connections are wall-blocked). Interrupt takes
				// effect at the next boundary the prober reaches; until
				// then we keep waiting — the run owns its goroutines.
				fired = true
				camp.Interrupt()
			}
			timer.Reset(s.cfg.WatchdogPoll)
		}
	}
}

// backoff sleeps the capped exponential failover delay; the return
// value reports that a drain started and the retry must not happen.
func (s *Supervisor) backoff(retry int) bool {
	d := s.cfg.BackoffBase << (retry - 1)
	if d > s.cfg.BackoffMax || d <= 0 {
		d = s.cfg.BackoffMax
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return s.isDraining()
	case <-s.drainCh:
		return true
	}
}

func (s *Supervisor) breakerFailure(j *job) {
	if s.breaker.failure(j.spec.Vantage) && s.met.breakerOpened != nil {
		s.met.breakerOpened.Inc()
	}
}

// finalize publishes a job's terminal result and releases its
// admission reservations.
func (s *Supervisor) finalize(j *job, res *Result) {
	res.Tenant = j.spec.Tenant
	res.Campaign = j.spec.Name
	res.Retries = j.retries
	if res.Store != nil {
		res.Graph = graph.FromStore(res.Store, j.spec.Vantage, s.protoOf(j, res))
	}

	s.mu.Lock()
	wasRunning := j.state == StateRunning
	j.state = res.State
	j.reason = res.Reason
	ts := s.tenants[j.spec.Tenant]
	ts.admitted -= j.spec.effRate()
	ts.inflight--
	if wasRunning {
		ts.running--
	}
	delete(s.active, j.spec.Tag())
	if s.met.running != nil {
		s.met.running.Set(s.runningLocked())
	}
	s.mu.Unlock()

	switch res.State {
	case StateCompleted:
		if s.met.completed != nil {
			s.met.completed.Inc()
		}
		if s.tel != nil {
			s.tel.Counter("sched_tenant_completed_total_" + j.spec.Tenant).Inc()
		}
	case StateIncomplete:
		if s.met.incomplete != nil {
			s.met.incomplete.Inc()
		}
	case StateDrained:
		if s.met.drained != nil {
			s.met.drained.Inc()
		}
	}
	ev := Event{Event: res.State.String(), Tenant: j.spec.Tenant, Campaign: j.spec.Name, Reason: res.Reason}
	if res.Store != nil {
		ev.Probes = res.Stats.ProbesSent
		ev.Replies = res.Stats.Replies
		ev.Nodes = res.Graph.NumNodes()
		ev.Edges = res.Graph.NumEdges()
	}
	j.st.event(ev)

	j.h.mu.Lock()
	j.h.res = res
	j.h.mu.Unlock()
	close(j.h.done)
}

// protoOf resolves the transport for graph derivation — from the
// artifact for resumed campaigns, from the spec otherwise.
func (s *Supervisor) protoOf(j *job, res *Result) uint8 {
	if c := j.camp.Load(); c != nil {
		return c.Proto()
	}
	if j.spec.Proto != 0 {
		return j.spec.Proto
	}
	return wire.ProtoICMPv6
}

// Drain shuts the supervisor down gracefully: new submissions are
// rejected with ErrDraining, running campaigns are interrupted and
// checkpointed, queued campaigns are returned as bare specs, and the
// worker pool exits. The returned Drained list, resubmitted to a fresh
// supervisor (Artifact as Resume), continues every campaign
// byte-identically. Drain is terminal — the supervisor cannot be
// reused — and returns ctx.Err if the context expires first.
func (s *Supervisor) Drain(ctx context.Context) ([]Drained, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.draining = true
	close(s.drainCh)
	queued := s.queue
	s.queue = nil
	if s.met.queueDepth != nil {
		s.met.queueDepth.Set(0)
	}
	var live []*job
	for _, j := range s.all {
		if j.state == StateRunning {
			live = append(live, j)
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	var out []Drained
	for _, j := range queued {
		s.finalize(j, &Result{State: StateDrained, Reason: "drained-queued"})
		out = append(out, Drained{Spec: j.h.Spec()})
	}
	for _, j := range live {
		if c := j.camp.Load(); c != nil {
			c.Interrupt()
		}
	}
	for _, j := range live {
		select {
		case <-j.h.Done():
		case <-ctx.Done():
			return out, ctx.Err()
		}
		if res := j.h.Result(); res.State == StateDrained && res.Artifact != nil {
			sp := j.h.Spec()
			out = append(out, Drained{Spec: sp, Artifact: res.Artifact})
		}
	}

	s.mu.Lock()
	s.stopping = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	return out, nil
}
