package sched

import (
	"sync"
	"time"
)

// BreakerState is a vantage circuit breaker's position.
type BreakerState uint8

const (
	// BreakerClosed admits campaigns normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects campaigns on the vantage until the cooldown
	// elapses.
	BreakerOpen
	// BreakerHalfOpen admits one trial campaign; its outcome decides
	// whether the breaker closes again or re-opens.
	BreakerHalfOpen
)

// String names the state for status reports and stream events.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// breakerSet is the per-vantage circuit breaker bank. A vantage whose
// campaigns keep failing — watchdog exhaustion, fatal run errors,
// quarantine-degraded completions — trips after threshold consecutive
// failures; while open, new campaigns on it are rejected at admission
// and queued ones degrade to Incomplete at dispatch, so one faulty
// vantage cannot wedge the whole service behind retry storms. After
// cooldown the breaker half-opens and admits one trial: success closes
// it, failure re-opens it (restarting the cooldown).
type breakerSet struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	m         map[string]*breakerEntry
}

type breakerEntry struct {
	fails    int
	open     bool
	probing  bool // half-open trial in flight
	openedAt time.Time
}

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	return &breakerSet{threshold: threshold, cooldown: cooldown, m: make(map[string]*breakerEntry)}
}

// state reports the breaker's current position for one vantage.
func (b *breakerSet) state(vantage string) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.m[vantage]
	switch {
	case e == nil || !e.open:
		return BreakerClosed
	case time.Since(e.openedAt) >= b.cooldown:
		return BreakerHalfOpen
	}
	return BreakerOpen
}

// admit reports whether a campaign on the vantage may proceed, claiming
// the half-open trial slot when the cooldown has elapsed.
func (b *breakerSet) admit(vantage string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.m[vantage]
	if e == nil || !e.open {
		return true
	}
	if time.Since(e.openedAt) < b.cooldown {
		return false
	}
	// Half-open: exactly one trial campaign at a time.
	if e.probing {
		return false
	}
	e.probing = true
	return true
}

// success records a clean campaign completion, closing the breaker.
func (b *breakerSet) success(vantage string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.m[vantage]; e != nil {
		e.fails, e.open, e.probing = 0, false, false
	}
}

// failure records a campaign failure; the return value reports whether
// this failure tripped (or re-tripped) the breaker open.
func (b *breakerSet) failure(vantage string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.m[vantage]
	if e == nil {
		e = &breakerEntry{}
		b.m[vantage] = e
	}
	e.fails++
	if e.open && e.probing {
		// Failed half-open trial: straight back to open.
		e.probing = false
		e.openedAt = time.Now()
		return true
	}
	if !e.open && e.fails >= b.threshold {
		e.open = true
		e.openedAt = time.Now()
		return true
	}
	return false
}
