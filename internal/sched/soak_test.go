package sched

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"beholder/internal/core"
	"beholder/internal/faultsim"
	"beholder/internal/graph"
	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/telemetry"
	"beholder/internal/testutil"
	"beholder/internal/wire"
)

// graphBytes renders a result graph for byte comparison.
func graphBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Graph.WriteNDJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSupervisedNeutrality is the core supervision invariant in
// miniature: two tenants' campaigns run concurrently over one shared
// universe, and each result is byte-identical to the same campaign run
// bare and alone on a fresh universe — the supervisor (and the
// streaming observers it attaches) leaves no trace in the data.
func TestSupervisedNeutrality(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	const seed = 5001
	env := newTestEnv(seed, nil)
	s, err := New(Config{Opener: env.opener, Workers: 2,
		Tenants: []Tenant{{Name: "ta"}, {Name: "tb"}}})
	if err != nil {
		t.Fatal(err)
	}
	specs := []CampaignSpec{
		testSpec("ta", "c", schedTargets(seed, 48)),
		testSpec("tb", "c", schedTargets(seed+1, 32)),
	}
	specs[0].Shards, specs[0].Batch = 2, 64
	specs[1].Shards, specs[1].Batch = 3, 16
	var streams [2]bytes.Buffer
	var handles [2]*Handle
	for i := range specs {
		specs[i].Stream = &streams[i]
		h, err := s.Submit(specs[i])
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		res, err := h.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.State != StateCompleted || res.Err != nil {
			t.Fatalf("campaign %d: %+v", i, res)
		}
		bare, bareStats, bareErr := soloRun(t, seed, nil, specs[i])
		if bareErr != nil {
			t.Fatal(bareErr)
		}
		if !res.Store.Equal(bare) {
			t.Fatalf("campaign %d: supervised store differs from bare run", i)
		}
		if res.Stats.ProbesSent != bareStats.ProbesSent || res.Stats.Replies != bareStats.Replies {
			t.Fatalf("campaign %d: stats %+v vs bare %+v", i, res.Stats.Stats, bareStats.Stats)
		}
	}

	// The NDJSON stream must parse line by line, open with admission,
	// close with completion, and carry monotonically growing deltas.
	for i := range streams {
		dec := json.NewDecoder(&streams[i])
		var evs []Event
		for dec.More() {
			var ev Event
			if err := dec.Decode(&ev); err != nil {
				t.Fatalf("stream %d: %v", i, err)
			}
			evs = append(evs, ev)
		}
		if len(evs) < 3 {
			t.Fatalf("stream %d: only %d events", i, len(evs))
		}
		if evs[0].Event != "submitted" || evs[1].Event != "started" {
			t.Fatalf("stream %d opens %s,%s", i, evs[0].Event, evs[1].Event)
		}
		last := evs[len(evs)-1]
		if last.Event != "completed" || last.Probes == 0 || last.Nodes == 0 {
			t.Fatalf("stream %d closes %+v", i, last)
		}
		deltas := 0
		perShard := map[int]int{}
		for _, ev := range evs[2 : len(evs)-1] {
			if ev.Event != "delta" {
				t.Fatalf("stream %d: unexpected %q mid-stream", i, ev.Event)
			}
			if ev.Nodes < perShard[ev.Shard] {
				t.Fatalf("stream %d shard %d: nodes shrank", i, ev.Shard)
			}
			perShard[ev.Shard] = ev.Nodes
			deltas++
		}
		if deltas == 0 {
			t.Fatalf("stream %d: no graph deltas", i)
		}
	}
	drainAll(t, s)
}

// soakCase is one tenant's campaign in the chaos soak, with the fault
// rules addressed to it alone.
type soakCase struct {
	name   string
	shards int
	batch  int
	rules  []faultsim.Rule
	crash  bool // lossless recovery: also byte-equal to a fault-free run
}

// TestChaosSoak is the acceptance harness: eight tenants' campaigns
// multiplexed concurrently over one shared universe while
// campaign-addressed fault rules crash shard hosts, blackhole windows,
// and damage traffic — each tenant's faults invisible to the others.
// Every campaign must terminate Completed, byte-identical to its solo
// run under identical faults (supervisor neutrality); the crash
// campaigns, whose recovery is lossless, must additionally match their
// solo fault-free runs. No goroutine may outlive the drained
// supervisor.
func TestChaosSoak(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	const seed = 9001
	cases := []soakCase{
		{name: "crash-early", shards: 2, batch: 64, crash: true,
			rules: []faultsim.Rule{{Vantage: "US-EDU-1", Shard: 0, Kind: faultsim.KindCrash, At: 300 * time.Millisecond}}},
		{name: "stall", shards: 2, batch: 16,
			rules: []faultsim.Rule{{Vantage: "US-EDU-1", Shard: faultsim.MatchAnyShard, Kind: faultsim.KindStall, At: 200 * time.Millisecond, Duration: 150 * time.Millisecond}}},
		{name: "transient", shards: 1, batch: 1,
			rules: []faultsim.Rule{{Vantage: "US-EDU-1", Shard: faultsim.MatchAnyShard, Kind: faultsim.KindTransientSend, Prob: 0.1}}},
		{name: "corrupt", shards: 3, batch: 32,
			rules: []faultsim.Rule{{Vantage: "US-EDU-1", Shard: faultsim.MatchAnyShard, Kind: faultsim.KindCorruptReply, Prob: 0.3}}},
		{name: "clean", shards: 4, batch: 64},
		{name: "crash-late", shards: 3, batch: 1, crash: true,
			rules: []faultsim.Rule{{Vantage: "US-EDU-1", Shard: 1, Kind: faultsim.KindCrash, At: 500 * time.Millisecond}}},
		{name: "truncate", shards: 2, batch: 64,
			rules: []faultsim.Rule{{Vantage: "US-EDU-1", Shard: faultsim.MatchAnyShard, Kind: faultsim.KindTruncateReply, Prob: 0.2}}},
		{name: "delay", shards: 1, batch: 64,
			rules: []faultsim.Rule{{Vantage: "US-EDU-1", Shard: faultsim.MatchAnyShard, Kind: faultsim.KindDelayBurst, At: 300 * time.Millisecond, Duration: 400 * time.Millisecond}}},
	}

	// One fault plane for the whole universe: every rule is addressed
	// to exactly one campaign tag, so tenants only feel their own
	// chaos. The tenants are submitted against a single vantage, making
	// the breaker threshold effectively "off" — vantage health is not
	// under test here.
	var tenants []Tenant
	specs := make([]CampaignSpec, len(cases))
	fc := &faultsim.Config{Seed: 0x50a1}
	for i, c := range cases {
		tenant := fmt.Sprintf("t%d", i)
		tenants = append(tenants, Tenant{Name: tenant})
		sp := testSpec(tenant, c.name, schedTargets(seed+int64(i), 40+i))
		sp.Shards, sp.Batch = c.shards, c.batch
		specs[i] = sp
		for _, r := range c.rules {
			r.Campaign = sp.Tag()
			fc.Rules = append(fc.Rules, r)
		}
	}

	env := newTestEnv(seed, fc)
	reg := telemetry.NewRegistry()
	s, err := New(Config{Opener: env.opener, Workers: 4, Tenants: tenants,
		Telemetry: reg, BreakerThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*Handle, len(specs))
	for i := range specs {
		h, err := s.Submit(specs[i])
		if err != nil {
			t.Fatalf("%s: %v", cases[i].name, err)
		}
		handles[i] = h
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for i, h := range handles {
		res, err := h.Wait(ctx)
		if err != nil {
			t.Fatalf("%s did not terminate: %v", cases[i].name, err)
		}
		if res.State != StateCompleted || res.Err != nil {
			t.Fatalf("%s: state %v err %v reason %q", cases[i].name, res.State, res.Err, res.Reason)
		}
		if cases[i].crash && len(res.Stats.Quarantined) == 0 {
			t.Fatalf("%s: crash campaign quarantined nothing", cases[i].name)
		}

		// Supervisor neutrality: byte-identical to the same campaign run
		// bare under identical faults on a fresh universe.
		solo, soloStats, soloErr := soloRun(t, seed, fc, specs[i])
		if soloErr != nil {
			t.Fatalf("%s solo: %v", cases[i].name, soloErr)
		}
		if !res.Store.Equal(solo) {
			t.Fatalf("%s: supervised store differs from solo identically-faulted run", cases[i].name)
		}
		if res.Stats.ProbesSent != soloStats.ProbesSent || res.Stats.Replies != soloStats.Replies {
			t.Fatalf("%s: stats %+v vs solo %+v", cases[i].name, res.Stats.Stats, soloStats.Stats)
		}

		// Crash recovery is lossless: the quarantined shard's range is
		// re-probed at the original instants, so the store also matches
		// the solo fault-free run.
		if cases[i].crash {
			clean, _, cleanErr := soloRun(t, seed, nil, specs[i])
			if cleanErr != nil {
				t.Fatalf("%s fault-free: %v", cases[i].name, cleanErr)
			}
			if !res.Store.Equal(clean) {
				t.Fatalf("%s: crash-recovered store differs from fault-free run", cases[i].name)
			}
		}
	}

	snap := reg.Snapshot()
	if got := counterVal(t, snap, "sched_completed_total"); got != int64(len(cases)) {
		t.Fatalf("completed = %d", got)
	}
	if fired, _ := snap.Counter("sched_watchdog_interrupts_total"); fired != 0 {
		t.Fatalf("watchdog fired %d times in a virtual-time soak", fired)
	}
	drainAll(t, s)
}

// slowConn wall-delays every send so a wall-clock drain reliably lands
// mid-campaign. Virtual time — and therefore the result bytes — are
// untouched; resume equivalence holds at any cut point, so the tests
// need no control over where the drain actually cuts.
type slowConn struct {
	*netsim.Vantage
	delay time.Duration
}

func (c *slowConn) Send(pkt []byte) error {
	time.Sleep(c.delay)
	return c.Vantage.Send(pkt)
}

func (c *slowConn) SendBatch(pkts [][]byte, gap time.Duration) (int, bool, error) {
	time.Sleep(c.delay)
	return c.Vantage.SendBatch(pkts, gap)
}

// TestSoakDrainRestartChain is the restart half of the acceptance
// harness: a supervisor is drained mid-flight, a second supervisor
// resumes the drained artifacts on a fresh identically-seeded universe
// and is itself drained, and a third runs everything to completion.
// Every campaign's final store must be byte-identical to its
// uninterrupted solo run — including a crash-faulted campaign whose
// fault plane re-applies across every restart.
func TestSoakDrainRestartChain(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	const seed = 9100
	fc := &faultsim.Config{Seed: 0xc4a1, Rules: []faultsim.Rule{
		{Vantage: "US-EDU-1", Campaign: "tc/c", Shard: 0, Kind: faultsim.KindCrash, At: 300 * time.Millisecond},
	}}
	tenants := []Tenant{{Name: "ta"}, {Name: "tb"}, {Name: "tc"}}
	specs := []CampaignSpec{
		testSpec("ta", "a", schedTargets(seed, 48)),
		testSpec("tb", "b", schedTargets(seed+1, 40)),
		testSpec("tc", "c", schedTargets(seed+2, 44)),
	}
	specs[0].Shards, specs[0].Batch = 2, 64
	specs[1].Shards, specs[1].Batch = 1, 1
	specs[2].Shards, specs[2].Batch = 3, 16

	type ref struct {
		store *probe.Store
		stats core.CampaignStats
	}
	refs := map[string]ref{}
	for _, sp := range specs {
		store, stats, err := soloRun(t, seed, fc, sp)
		if err != nil {
			t.Fatalf("%s reference: %v", sp.Tag(), err)
		}
		refs[sp.Tag()] = ref{store, stats}
	}

	// runStage executes one supervisor generation: submit, optionally
	// drain after a wall delay, and split the outcomes into final
	// results and respawn specs for the next generation.
	finals := map[string]*Result{}
	runStage := func(stage int, pending []CampaignSpec, slow bool, drainAfter time.Duration) []CampaignSpec {
		env := newTestEnv(seed, fc)
		op := env.opener
		if slow {
			op = func(spec *CampaignSpec) (core.ConnFactory, error) {
				inner, err := env.opener(spec)
				if err != nil {
					return nil, err
				}
				return func(shard int, start time.Duration) probe.Conn {
					return &slowConn{Vantage: inner(shard, start).(*netsim.Vantage), delay: time.Millisecond}
				}, nil
			}
		}
		s, err := New(Config{Opener: op, Workers: len(pending), Tenants: tenants,
			StallBudget: 30 * time.Second}) // slowed conns must not trip the watchdog
		if err != nil {
			t.Fatal(err)
		}
		handles := map[string]*Handle{}
		for _, sp := range pending {
			h, err := s.Submit(sp)
			if err != nil {
				t.Fatalf("stage %d submit %s: %v", stage, sp.Tag(), err)
			}
			handles[sp.Tag()] = h
		}
		var next []CampaignSpec
		if drainAfter > 0 {
			time.Sleep(drainAfter)
			ds := drainAll(t, s)
			for _, d := range ds {
				sp := d.Spec
				sp.Resume = d.Artifact
				next = append(next, sp)
			}
		} else {
			for tag, h := range handles {
				if _, err := h.Wait(context.Background()); err != nil {
					t.Fatalf("stage %d wait %s: %v", stage, tag, err)
				}
			}
			drainAll(t, s)
		}
		for tag, h := range handles {
			res := h.Result()
			if res == nil {
				t.Fatalf("stage %d: %s has no result after drain", stage, tag)
			}
			switch res.State {
			case StateCompleted:
				finals[tag] = res
			case StateDrained:
			default:
				t.Fatalf("stage %d: %s state %v reason %q err %v", stage, tag, res.State, res.Reason, res.Err)
			}
		}
		return next
	}

	pending := specs
	pending = runStage(1, pending, true, 25*time.Millisecond)
	if len(finals) == len(specs) {
		t.Log("every campaign completed before the first drain; chain degenerate but valid")
	}
	if len(pending) > 0 {
		pending = runStage(2, pending, true, 25*time.Millisecond)
	}
	if len(pending) > 0 {
		runStage(3, pending, false, 0)
	}

	if len(finals) != len(specs) {
		t.Fatalf("only %d of %d campaigns completed across the chain", len(finals), len(specs))
	}
	for _, sp := range specs {
		res := finals[sp.Tag()]
		want := refs[sp.Tag()]
		if !res.Store.Equal(want.store) {
			t.Fatalf("%s: chained store differs from uninterrupted run", sp.Tag())
		}
		if res.Stats.ProbesSent != want.stats.ProbesSent || res.Stats.Replies != want.stats.Replies {
			t.Fatalf("%s: chained stats %+v vs %+v", sp.Tag(), res.Stats.Stats, want.stats.Stats)
		}
		wantGraph := graphFromStore(t, want.store, sp)
		if !bytes.Equal(graphBytes(t, res), wantGraph) {
			t.Fatalf("%s: chained graph differs from uninterrupted run", sp.Tag())
		}
	}
}

// graphFromStore renders the reference graph for byte comparison.
func graphFromStore(t *testing.T, store *probe.Store, sp CampaignSpec) []byte {
	t.Helper()
	proto := sp.Proto
	if proto == 0 {
		proto = wire.ProtoICMPv6
	}
	var buf bytes.Buffer
	if err := graph.FromStore(store, sp.Vantage, proto).WriteNDJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
