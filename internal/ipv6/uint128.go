// Package ipv6 provides the address arithmetic that underpins the rest of
// the library: 128-bit unsigned integers, prefix manipulation, address sets,
// discriminating prefix lengths (DPL), and a longest-prefix-match trie.
//
// Addresses are represented with net/netip.Addr, which is comparable and
// therefore usable as a map key; the conversions to and from U128 make bit
// surgery (interface identifiers, prefix masks, permuted offsets) cheap and
// allocation free.
package ipv6

import (
	"math/bits"
	"net/netip"
)

// U128 is an unsigned 128-bit integer, big-endian with respect to an IPv6
// address: Hi holds the top 64 bits (the subnet prefix in common address
// plans) and Lo the bottom 64 bits (the interface identifier).
type U128 struct {
	Hi uint64
	Lo uint64
}

// FromAddr converts an address to its 128-bit integer value.
// IPv4 addresses are converted via their IPv4-mapped IPv6 form.
func FromAddr(a netip.Addr) U128 {
	b := a.As16()
	return U128{
		Hi: beUint64(b[0:8]),
		Lo: beUint64(b[8:16]),
	}
}

// Addr converts the integer back to a netip.Addr (always 16-byte form).
func (u U128) Addr() netip.Addr {
	var b [16]byte
	bePutUint64(b[0:8], u.Hi)
	bePutUint64(b[8:16], u.Lo)
	return netip.AddrFrom16(b)
}

func beUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

func bePutUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}

// And returns u & v.
func (u U128) And(v U128) U128 { return U128{u.Hi & v.Hi, u.Lo & v.Lo} }

// Or returns u | v.
func (u U128) Or(v U128) U128 { return U128{u.Hi | v.Hi, u.Lo | v.Lo} }

// Xor returns u ^ v.
func (u U128) Xor(v U128) U128 { return U128{u.Hi ^ v.Hi, u.Lo ^ v.Lo} }

// Not returns ^u.
func (u U128) Not() U128 { return U128{^u.Hi, ^u.Lo} }

// Add returns u + v mod 2^128.
func (u U128) Add(v U128) U128 {
	lo, carry := bits.Add64(u.Lo, v.Lo, 0)
	hi, _ := bits.Add64(u.Hi, v.Hi, carry)
	return U128{hi, lo}
}

// Add64 returns u + v mod 2^128 for a small addend.
func (u U128) Add64(v uint64) U128 { return u.Add(U128{0, v}) }

// Sub returns u - v mod 2^128.
func (u U128) Sub(v U128) U128 {
	lo, borrow := bits.Sub64(u.Lo, v.Lo, 0)
	hi, _ := bits.Sub64(u.Hi, v.Hi, borrow)
	return U128{hi, lo}
}

// Shl returns u << n. Shifts of 128 or more yield zero.
func (u U128) Shl(n uint) U128 {
	switch {
	case n == 0:
		return u
	case n < 64:
		return U128{u.Hi<<n | u.Lo>>(64-n), u.Lo << n}
	case n < 128:
		return U128{u.Lo << (n - 64), 0}
	default:
		return U128{}
	}
}

// Shr returns u >> n. Shifts of 128 or more yield zero.
func (u U128) Shr(n uint) U128 {
	switch {
	case n == 0:
		return u
	case n < 64:
		return U128{u.Hi >> n, u.Lo>>n | u.Hi<<(64-n)}
	case n < 128:
		return U128{0, u.Hi >> (n - 64)}
	default:
		return U128{}
	}
}

// Cmp returns -1, 0, or +1 comparing u and v as unsigned integers.
func (u U128) Cmp(v U128) int {
	switch {
	case u.Hi < v.Hi:
		return -1
	case u.Hi > v.Hi:
		return 1
	case u.Lo < v.Lo:
		return -1
	case u.Lo > v.Lo:
		return 1
	}
	return 0
}

// IsZero reports whether u == 0.
func (u U128) IsZero() bool { return u.Hi == 0 && u.Lo == 0 }

// Bit returns the bit at position i where position 0 is the most significant
// bit of the address (the leftmost bit, network order). i must be in [0,128).
func (u U128) Bit(i int) uint {
	if i < 64 {
		return uint(u.Hi>>(63-i)) & 1
	}
	return uint(u.Lo>>(127-i)) & 1
}

// SetBit returns a copy of u with bit i (MSB-0 order) set to v (0 or 1).
func (u U128) SetBit(i int, v uint) U128 {
	if i < 64 {
		mask := uint64(1) << (63 - i)
		if v == 0 {
			u.Hi &^= mask
		} else {
			u.Hi |= mask
		}
		return u
	}
	mask := uint64(1) << (127 - i)
	if v == 0 {
		u.Lo &^= mask
	} else {
		u.Lo |= mask
	}
	return u
}

// LeadingZeros returns the number of leading zero bits in u (0..128).
func (u U128) LeadingZeros() int {
	if u.Hi != 0 {
		return bits.LeadingZeros64(u.Hi)
	}
	return 64 + bits.LeadingZeros64(u.Lo)
}

// Mask returns the netmask with the top n bits set (n in [0,128]).
func Mask(n int) U128 {
	switch {
	case n <= 0:
		return U128{}
	case n >= 128:
		return U128{^uint64(0), ^uint64(0)}
	case n <= 64:
		return U128{^uint64(0) << (64 - n), 0}
	default:
		return U128{^uint64(0), ^uint64(0) << (128 - n)}
	}
}

// CommonPrefixLen returns the number of leading bits shared by a and b,
// in [0,128].
func CommonPrefixLen(a, b netip.Addr) int {
	x := FromAddr(a).Xor(FromAddr(b))
	return x.LeadingZeros()
}

// MustAddr parses s as an IPv6 address and panics on error. It is intended
// for tests, tables of constants, and example programs.
func MustAddr(s string) netip.Addr {
	return netip.MustParseAddr(s)
}

// MustPrefix parses s as an IPv6 prefix and panics on error.
func MustPrefix(s string) netip.Prefix {
	return netip.MustParsePrefix(s)
}
