package ipv6

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestWithIID(t *testing.T) {
	a := MustAddr("2001:db8:1:2:aaaa:bbbb:cccc:dddd")
	got := WithIID(a, 1)
	want := MustAddr("2001:db8:1:2::1")
	if got != want {
		t.Errorf("WithIID: got %s want %s", got, want)
	}
	if IID(got) != 1 {
		t.Errorf("IID: got %d", IID(got))
	}
	fixed := uint64(0x1234_5678_1234_5678)
	if got := IID(WithIID(a, fixed)); got != fixed {
		t.Errorf("fixed IID round trip: %x", got)
	}
}

func TestSubnetPrefix64(t *testing.T) {
	a := MustAddr("2001:db8:1:2:aaaa:bbbb:cccc:dddd")
	got := SubnetPrefix64(a)
	want := MustPrefix("2001:db8:1:2::/64")
	if got != want {
		t.Errorf("SubnetPrefix64: got %s want %s", got, want)
	}
}

func TestCanonicalPrefix(t *testing.T) {
	p := netip.PrefixFrom(MustAddr("2001:db8::ffff"), 48)
	got := CanonicalPrefix(p)
	if got.Addr() != MustAddr("2001:db8::") || got.Bits() != 48 {
		t.Errorf("CanonicalPrefix: got %s", got)
	}
}

func TestPrefixBaseLast(t *testing.T) {
	p := MustPrefix("2001:db8::/48")
	if got := PrefixBase(p); got != MustAddr("2001:db8::") {
		t.Errorf("base: %s", got)
	}
	if got := PrefixLast(p); got != MustAddr("2001:db8:0:ffff:ffff:ffff:ffff:ffff") {
		t.Errorf("last: %s", got)
	}
}

func TestNthSubprefix(t *testing.T) {
	p := MustPrefix("2001:db8::/32")
	if got := NthSubprefix(p, 48, 0); got != MustPrefix("2001:db8::/48") {
		t.Errorf("i=0: %s", got)
	}
	if got := NthSubprefix(p, 48, 1); got != MustPrefix("2001:db8:1::/48") {
		t.Errorf("i=1: %s", got)
	}
	if got := NthSubprefix(p, 48, 0xffff); got != MustPrefix("2001:db8:ffff::/48") {
		t.Errorf("i=max: %s", got)
	}
}

func TestNthSubprefixPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range index")
		}
	}()
	NthSubprefix(MustPrefix("2001:db8::/32"), 48, 1<<16)
}

func TestNthAddr(t *testing.T) {
	p := MustPrefix("2001:db8::/64")
	if got := NthAddr(p, 0); got != MustAddr("2001:db8::") {
		t.Errorf("i=0: %s", got)
	}
	if got := NthAddr(p, 257); got != MustAddr("2001:db8::101") {
		t.Errorf("i=257: %s", got)
	}
}

func TestExtend(t *testing.T) {
	cases := []struct {
		in   string
		n    int
		want string
	}{
		{"2001:db8::/32", 48, "2001:db8::/48"},       // widen
		{"2001:db8:1:2::/64", 48, "2001:db8:1::/48"}, // aggregate
		{"2001:db8:1::/48", 48, "2001:db8:1::/48"},   // unchanged
		{"2001:db8::1/128", 64, "2001:db8::/64"},     // address → /64
		{"2001:db8:ffff::/48", 40, "2001:db8:ff00::/40"},
	}
	for _, c := range cases {
		got := Extend(MustPrefix(c.in), c.n)
		if got != MustPrefix(c.want) {
			t.Errorf("Extend(%s,%d) = %s want %s", c.in, c.n, got, c.want)
		}
	}
}

func TestExtendInvariantQuick(t *testing.T) {
	// For any address and n, the extended prefix covers the masked address
	// and has canonical (masked) form.
	f := func(hi, lo uint64, nRaw uint8) bool {
		n := int(nRaw%96) + 24 // prefix lengths 24..119
		a := U128{hi, lo}.Addr()
		p := Extend(netip.PrefixFrom(a, 128), n)
		if p.Bits() != n {
			return false
		}
		return p.Contains(a) && p == CanonicalPrefix(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIs6to4(t *testing.T) {
	if !Is6to4(MustAddr("2002:c000:204::1")) {
		t.Error("2002::/16 member not detected")
	}
	if Is6to4(MustAddr("2001:db8::1")) {
		t.Error("false positive")
	}
}

func TestEUI64RoundTrip(t *testing.T) {
	mac := [6]byte{0x00, 0x16, 0x3e, 0x12, 0x34, 0x56}
	iid := EUI64IID(mac)
	if !IsEUI64IID(iid) {
		t.Fatalf("EUI64IID(%x) = %x not recognized", mac, iid)
	}
	got, ok := MACFromEUI64(iid)
	if !ok || got != mac {
		t.Errorf("MAC round trip: got %x ok=%v want %x", got, ok, mac)
	}
	// The universal/local bit must be flipped: 00:16:3e → 02:16:3e.
	if byte(iid>>56) != 0x02 {
		t.Errorf("u/l bit not inverted: top octet %x", byte(iid>>56))
	}
}

func TestEUI64QuickRoundTrip(t *testing.T) {
	f := func(m0, m1, m2, m3, m4, m5 byte) bool {
		mac := [6]byte{m0, m1, m2, m3, m4, m5}
		got, ok := MACFromEUI64(EUI64IID(mac))
		return ok && got == mac
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsEUI64IIDNegative(t *testing.T) {
	if IsEUI64IID(0x0000_0000_0000_0001) {
		t.Error("lowbyte IID misclassified as EUI-64")
	}
	if IsEUI64IID(0x1234_5678_1234_5678) {
		t.Error("fixed IID misclassified as EUI-64")
	}
}
