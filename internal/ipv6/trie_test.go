package ipv6

import (
	"math/rand"
	"net/netip"
	"testing"
)

func TestTrieLookupLongestMatch(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustPrefix("2001:db8::/32"), 1)
	tr.Insert(MustPrefix("2001:db8:1::/48"), 2)
	tr.Insert(MustPrefix("2001:db8:1:1::/64"), 3)

	cases := []struct {
		addr string
		want int
		ok   bool
	}{
		{"2001:db8:1:1::5", 3, true},
		{"2001:db8:1:2::5", 2, true},
		{"2001:db8:2::5", 1, true},
		{"2001:db9::1", 0, false},
	}
	for _, c := range cases {
		p, v, ok := tr.Lookup(MustAddr(c.addr))
		if ok != c.ok || (ok && v != c.want) {
			t.Errorf("Lookup(%s) = (%s,%d,%v) want (%d,%v)", c.addr, p, v, ok, c.want, c.ok)
		}
	}
}

func TestTrieLookupReturnsMatchedPrefix(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustPrefix("2001:db8::/32"), "a")
	p, _, ok := tr.Lookup(MustAddr("2001:db8:ffff::1"))
	if !ok || p != MustPrefix("2001:db8::/32") {
		t.Errorf("matched prefix = %s ok=%v", p, ok)
	}
}

func TestTrieExact(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustPrefix("2001:db8::/32"), 7)
	if v, ok := tr.Exact(MustPrefix("2001:db8::/32")); !ok || v != 7 {
		t.Errorf("exact = %d,%v", v, ok)
	}
	if _, ok := tr.Exact(MustPrefix("2001:db8::/33")); ok {
		t.Error("phantom exact match")
	}
	// Re-insert replaces.
	tr.Insert(MustPrefix("2001:db8::/32"), 9)
	if v, _ := tr.Exact(MustPrefix("2001:db8::/32")); v != 9 {
		t.Errorf("replace failed: %d", v)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d want 1", tr.Len())
	}
}

func TestTrieCovering(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustPrefix("2001:db8::/32"), 1)
	tr.Insert(MustPrefix("2001:db8:1::/48"), 2)
	tr.Insert(MustPrefix("2001:db8:1:1::/64"), 3)
	got := tr.Covering(MustAddr("2001:db8:1:1::9"))
	if len(got) != 3 {
		t.Fatalf("covering count = %d want 3: %v", len(got), got)
	}
	// Shortest to longest.
	if got[0].Value != 1 || got[1].Value != 2 || got[2].Value != 3 {
		t.Errorf("covering order: %v", got)
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustPrefix("::/0"), "default")
	_, v, ok := tr.Lookup(MustAddr("2001:db8::1"))
	if !ok || v != "default" {
		t.Errorf("default route: %s %v", v, ok)
	}
}

func TestTrieWalkOrderAndEntries(t *testing.T) {
	var tr Trie[int]
	prefixes := []string{"2001:db9::/32", "2001:db8::/32", "2001:db8:1::/48"}
	for i, p := range prefixes {
		tr.Insert(MustPrefix(p), i)
	}
	entries := tr.Entries()
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	// Address order: db8/32 sorts before db8:1/48 (same base? No: db8::/32
	// base equals db8:1::/48's base up to bit 32; walk emits shorter first
	// along the same path), db9 last.
	if entries[0].Prefix != MustPrefix("2001:db8::/32") {
		t.Errorf("entry 0 = %s", entries[0].Prefix)
	}
	if entries[2].Prefix != MustPrefix("2001:db9::/32") {
		t.Errorf("entry 2 = %s", entries[2].Prefix)
	}
}

func TestTrieWalkEarlyStop(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustPrefix("2001:db8::/32"), 1)
	tr.Insert(MustPrefix("2001:db9::/32"), 2)
	n := 0
	tr.Walk(func(netip.Prefix, int) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("walk visited %d want 1", n)
	}
}

func TestTrieHostRoutes(t *testing.T) {
	var tr Trie[int]
	a := MustAddr("2001:db8::42")
	tr.Insert(netip.PrefixFrom(a, 128), 5)
	_, v, ok := tr.Lookup(a)
	if !ok || v != 5 {
		t.Errorf("host route: %d %v", v, ok)
	}
	if _, _, ok := tr.Lookup(MustAddr("2001:db8::43")); ok {
		t.Error("host route leaked to sibling")
	}
}

func TestTrieRandomizedAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var tr Trie[int]
	type ent struct {
		p netip.Prefix
		v int
	}
	var ents []ent
	for i := 0; i < 300; i++ {
		bits := 16 + rng.Intn(49) // /16../64
		u := U128{0x2000_0000_0000_0000 | rng.Uint64()>>4, rng.Uint64()}
		p := CanonicalPrefix(netip.PrefixFrom(u.Addr(), bits))
		tr.Insert(p, i)
		ents = append(ents, ent{p, i})
	}
	// Last insert wins for duplicate prefixes; build reference map.
	ref := make(map[netip.Prefix]int)
	for _, e := range ents {
		ref[e.p] = e.v
	}
	for i := 0; i < 1000; i++ {
		u := U128{0x2000_0000_0000_0000 | rng.Uint64()>>4, rng.Uint64()}
		a := u.Addr()
		// Linear-scan longest match.
		bestLen := -1
		bestVal := 0
		for p, v := range ref {
			if p.Contains(a) && p.Bits() > bestLen {
				bestLen = p.Bits()
				bestVal = v
			}
		}
		p, v, ok := tr.Lookup(a)
		if bestLen < 0 {
			if ok {
				t.Fatalf("phantom match %s for %s", p, a)
			}
			continue
		}
		if !ok || v != bestVal || p.Bits() != bestLen {
			t.Fatalf("mismatch for %s: trie (%s,%d,%v) scan (/%d,%d)", a, p, v, ok, bestLen, bestVal)
		}
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var tr Trie[int]
	for i := 0; i < 50_000; i++ {
		bits := 20 + rng.Intn(45)
		u := U128{0x2000_0000_0000_0000 | rng.Uint64()>>4, 0}
		tr.Insert(netip.PrefixFrom(u.Addr(), bits), i)
	}
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		addrs[i] = U128{0x2000_0000_0000_0000 | rng.Uint64()>>4, rng.Uint64()}.Addr()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i%1024])
	}
}
