package ipv6

import (
	"net/netip"
	"sort"
)

// Set is an ordered, duplicate-free collection of IPv6 addresses. The
// target-generation pipeline, DPL analysis, and campaign bookkeeping all
// operate on Sets; operations preserve sortedness so that neighbor queries
// (the heart of DPL) are O(log n).
type Set struct {
	addrs []netip.Addr // sorted ascending, unique
}

// NewSet builds a set from addrs, sorting and deduplicating.
func NewSet(addrs []netip.Addr) *Set {
	s := &Set{addrs: make([]netip.Addr, len(addrs))}
	copy(s.addrs, addrs)
	s.normalize()
	return s
}

// EmptySet returns a set with no members.
func EmptySet() *Set { return &Set{} }

func (s *Set) normalize() {
	sort.Slice(s.addrs, func(i, j int) bool { return s.addrs[i].Less(s.addrs[j]) })
	out := s.addrs[:0]
	var prev netip.Addr
	for i, a := range s.addrs {
		if i == 0 || a != prev {
			out = append(out, a)
		}
		prev = a
	}
	s.addrs = out
}

// Len returns the number of addresses in the set.
func (s *Set) Len() int { return len(s.addrs) }

// At returns the i'th address in sorted order.
func (s *Set) At(i int) netip.Addr { return s.addrs[i] }

// Addrs returns the underlying sorted slice. Callers must not mutate it.
func (s *Set) Addrs() []netip.Addr { return s.addrs }

// Contains reports whether a is a member.
func (s *Set) Contains(a netip.Addr) bool {
	i := sort.Search(len(s.addrs), func(i int) bool { return !s.addrs[i].Less(a) })
	return i < len(s.addrs) && s.addrs[i] == a
}

// Union returns a new set with the members of s and t.
func (s *Set) Union(t *Set) *Set {
	merged := make([]netip.Addr, 0, len(s.addrs)+len(t.addrs))
	merged = append(merged, s.addrs...)
	merged = append(merged, t.addrs...)
	return NewSet(merged)
}

// Intersect returns the members present in both s and t.
func (s *Set) Intersect(t *Set) *Set {
	a, b := s.addrs, t.addrs
	if len(a) > len(b) {
		a, b = b, a
	}
	var out []netip.Addr
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i].Less(b[j]):
			i++
		default:
			j++
		}
	}
	return &Set{addrs: out}
}

// Diff returns the members of s not present in t.
func (s *Set) Diff(t *Set) *Set {
	var out []netip.Addr
	i, j := 0, 0
	for i < len(s.addrs) {
		switch {
		case j >= len(t.addrs) || s.addrs[i].Less(t.addrs[j]):
			out = append(out, s.addrs[i])
			i++
		case s.addrs[i] == t.addrs[j]:
			i++
			j++
		default:
			j++
		}
	}
	return &Set{addrs: out}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	out := make([]netip.Addr, len(s.addrs))
	copy(out, s.addrs)
	return &Set{addrs: out}
}

// Exclusive computes, for each named set, the members appearing in that set
// and no other. This implements the paper's "exclusive" feature columns
// (Tables 5 and 7): contributions masked by combined/derived sets are the
// caller's responsibility to exclude from the input map.
func Exclusive(sets map[string]*Set) map[string]*Set {
	// Count occurrences across sets; an address is exclusive to a set when
	// its total multiplicity is one.
	mult := make(map[netip.Addr]int)
	for _, s := range sets {
		for _, a := range s.addrs {
			mult[a]++
		}
	}
	out := make(map[string]*Set, len(sets))
	for name, s := range sets {
		var excl []netip.Addr
		for _, a := range s.addrs {
			if mult[a] == 1 {
				excl = append(excl, a)
			}
		}
		out[name] = &Set{addrs: excl}
	}
	return out
}

// PrefixSet is the analogue of Set for prefixes, keyed by canonical
// (masked) prefix value.
type PrefixSet struct {
	prefixes []netip.Prefix // sorted, unique, canonical
}

// NewPrefixSet builds a prefix set, canonicalizing, sorting, and
// deduplicating the input.
func NewPrefixSet(ps []netip.Prefix) *PrefixSet {
	set := &PrefixSet{prefixes: make([]netip.Prefix, len(ps))}
	for i, p := range ps {
		set.prefixes[i] = CanonicalPrefix(p)
	}
	sort.Slice(set.prefixes, func(i, j int) bool { return lessPrefix(set.prefixes[i], set.prefixes[j]) })
	out := set.prefixes[:0]
	var prev netip.Prefix
	for i, p := range set.prefixes {
		if i == 0 || p != prev {
			out = append(out, p)
		}
		prev = p
	}
	set.prefixes = out
	return set
}

func lessPrefix(a, b netip.Prefix) bool {
	if a.Addr() != b.Addr() {
		return a.Addr().Less(b.Addr())
	}
	return a.Bits() < b.Bits()
}

// Len returns the number of prefixes.
func (s *PrefixSet) Len() int { return len(s.prefixes) }

// At returns the i'th prefix in sorted order.
func (s *PrefixSet) At(i int) netip.Prefix { return s.prefixes[i] }

// Prefixes returns the sorted canonical prefixes. Callers must not mutate.
func (s *PrefixSet) Prefixes() []netip.Prefix { return s.prefixes }

// Contains reports whether p (canonicalized) is a member.
func (s *PrefixSet) Contains(p netip.Prefix) bool {
	p = CanonicalPrefix(p)
	i := sort.Search(len(s.prefixes), func(i int) bool { return !lessPrefix(s.prefixes[i], p) })
	return i < len(s.prefixes) && s.prefixes[i] == p
}
