package ipv6

import "net/netip"

// Discriminating prefix length (DPL), after Kohler et al. (IMW 2002), as
// used throughout Section 3.4.1 and Section 6 of the paper.
//
// The DPL of an address within a set is the position (1-based, counting
// from the most significant bit) of the first bit at which the address
// differs from its nearest neighbor in the sorted set. Equivalently it is
// one more than the longest common prefix the address shares with any other
// member. Two addresses known to be in different subnets must therefore sit
// in subnets whose prefix length is at least their mutual DPL.

// DPLs returns the discriminating prefix length of every address in s, in
// the same (sorted) order as s.Addrs(). Sets with fewer than two members
// have no neighbors; a DPL of 0 is reported for their members.
func DPLs(s *Set) []int {
	n := s.Len()
	out := make([]int, n)
	if n < 2 {
		return out
	}
	// Longest common prefix with the sorted predecessor/successor bounds the
	// LCP with every other member, so only neighbors need inspection.
	lcpNext := make([]int, n-1)
	for i := 0; i < n-1; i++ {
		lcpNext[i] = CommonPrefixLen(s.At(i), s.At(i+1))
	}
	for i := 0; i < n; i++ {
		lcp := 0
		if i > 0 && lcpNext[i-1] > lcp {
			lcp = lcpNext[i-1]
		}
		if i < n-1 && lcpNext[i] > lcp {
			lcp = lcpNext[i]
		}
		out[i] = lcp + 1
	}
	return out
}

// DPLHistogram counts addresses by DPL value: index d of the returned
// array holds the number of addresses with DPL == d. Index 0 collects the
// degenerate single-member case.
func DPLHistogram(s *Set) [129]int {
	var h [129]int
	for _, d := range DPLs(s) {
		h[d]++
	}
	return h
}

// DPLCDF returns the cumulative fraction of addresses with DPL <= d for
// d in [0,128]. An empty set yields all zeros.
func DPLCDF(s *Set) [129]float64 {
	var cdf [129]float64
	n := s.Len()
	if n == 0 {
		return cdf
	}
	h := DPLHistogram(s)
	cum := 0
	for d := 0; d <= 128; d++ {
		cum += h[d]
		cdf[d] = float64(cum) / float64(n)
	}
	return cdf
}

// PairDPL returns the discriminating prefix length between two specific
// addresses: the 1-based position of their first differing bit. Identical
// addresses return 129 (no bit within 128 discriminates them).
func PairDPL(a, b netip.Addr) int {
	lcp := CommonPrefixLen(a, b)
	return lcp + 1
}
