package ipv6

import "net/netip"

// Trie is a binary radix trie mapping IPv6 prefixes to values of type V.
// It backs the BGP RIB (longest-prefix match, covering-prefix queries) and
// the subnet-discovery bookkeeping. One bit is consumed per level; with
// realistic RIB sizes (tens of thousands of prefixes) lookups walk at most
// 128 nodes, which profiles far below the cost of packet construction.
//
// The zero value is an empty trie ready for use.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// Insert associates v with prefix p, replacing any existing value.
func (t *Trie[V]) Insert(p netip.Prefix, v V) {
	p = CanonicalPrefix(p)
	if t.root == nil {
		t.root = &trieNode[V]{}
	}
	n := t.root
	u := FromAddr(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		b := u.Bit(i)
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.val = v
	n.set = true
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

// Exact returns the value stored at exactly prefix p.
func (t *Trie[V]) Exact(p netip.Prefix) (V, bool) {
	var zero V
	p = CanonicalPrefix(p)
	n := t.root
	u := FromAddr(p.Addr())
	for i := 0; n != nil && i < p.Bits(); i++ {
		n = n.child[u.Bit(i)]
	}
	if n == nil || !n.set {
		return zero, false
	}
	return n.val, true
}

// Lookup returns the value of the longest stored prefix covering a, along
// with that prefix. ok is false when no stored prefix covers a.
func (t *Trie[V]) Lookup(a netip.Addr) (p netip.Prefix, v V, ok bool) {
	u := FromAddr(a)
	n := t.root
	depth := 0
	bestDepth := -1
	var bestVal V
	for n != nil {
		if n.set {
			bestDepth = depth
			bestVal = n.val
		}
		if depth == 128 {
			break
		}
		n = n.child[u.Bit(depth)]
		depth++
	}
	if bestDepth < 0 {
		var zero V
		return netip.Prefix{}, zero, false
	}
	base := u.And(Mask(bestDepth))
	return netip.PrefixFrom(base.Addr(), bestDepth), bestVal, true
}

// Covering returns every stored (prefix, value) pair that covers a, from
// shortest to longest.
func (t *Trie[V]) Covering(a netip.Addr) []TrieEntry[V] {
	u := FromAddr(a)
	n := t.root
	depth := 0
	var out []TrieEntry[V]
	for n != nil {
		if n.set {
			base := u.And(Mask(depth))
			out = append(out, TrieEntry[V]{netip.PrefixFrom(base.Addr(), depth), n.val})
		}
		if depth == 128 {
			break
		}
		n = n.child[u.Bit(depth)]
		depth++
	}
	return out
}

// TrieEntry pairs a stored prefix with its value.
type TrieEntry[V any] struct {
	Prefix netip.Prefix
	Value  V
}

// Walk visits every stored (prefix, value) pair in address order. The walk
// stops early if fn returns false.
func (t *Trie[V]) Walk(fn func(p netip.Prefix, v V) bool) {
	var rec func(n *trieNode[V], u U128, depth int) bool
	rec = func(n *trieNode[V], u U128, depth int) bool {
		if n == nil {
			return true
		}
		if n.set {
			if !fn(netip.PrefixFrom(u.Addr(), depth), n.val) {
				return false
			}
		}
		if depth == 128 {
			return true
		}
		if !rec(n.child[0], u, depth+1) {
			return false
		}
		return rec(n.child[1], u.SetBit(depth, 1), depth+1)
	}
	rec(t.root, U128{}, 0)
}

// Entries returns all stored pairs in address order.
func (t *Trie[V]) Entries() []TrieEntry[V] {
	out := make([]TrieEntry[V], 0, t.size)
	t.Walk(func(p netip.Prefix, v V) bool {
		out = append(out, TrieEntry[V]{p, v})
		return true
	})
	return out
}
