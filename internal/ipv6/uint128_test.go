package ipv6

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestFromAddrRoundTrip(t *testing.T) {
	cases := []string{
		"::",
		"::1",
		"2001:db8::1",
		"fe80::1234:5678:9abc:def0",
		"ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff",
		"2002:c000:204::",
	}
	for _, s := range cases {
		a := MustAddr(s)
		if got := FromAddr(a).Addr(); got != a {
			t.Errorf("round trip %s: got %s", s, got)
		}
	}
}

func TestU128RoundTripQuick(t *testing.T) {
	f := func(hi, lo uint64) bool {
		u := U128{hi, lo}
		return FromAddr(u.Addr()) == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestU128AddSubInverse(t *testing.T) {
	f := func(ah, al, bh, bl uint64) bool {
		a := U128{ah, al}
		b := U128{bh, bl}
		return a.Add(b).Sub(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestU128AddCarry(t *testing.T) {
	a := U128{0, ^uint64(0)}
	got := a.Add64(1)
	want := U128{1, 0}
	if got != want {
		t.Errorf("carry: got %+v want %+v", got, want)
	}
	// Wraparound at 2^128.
	max := U128{^uint64(0), ^uint64(0)}
	if got := max.Add64(1); !got.IsZero() {
		t.Errorf("wrap: got %+v want zero", got)
	}
}

func TestU128ShlShr(t *testing.T) {
	u := U128{0, 1}
	if got := u.Shl(64); got != (U128{1, 0}) {
		t.Errorf("Shl(64): got %+v", got)
	}
	if got := u.Shl(127); got != (U128{1 << 63, 0}) {
		t.Errorf("Shl(127): got %+v", got)
	}
	if got := u.Shl(128); !got.IsZero() {
		t.Errorf("Shl(128): got %+v", got)
	}
	v := U128{1 << 63, 0}
	if got := v.Shr(127); got != (U128{0, 1}) {
		t.Errorf("Shr(127): got %+v", got)
	}
	if got := v.Shr(64); got != (U128{0, 1 << 63}) {
		t.Errorf("Shr(64): got %+v", got)
	}
}

func TestU128ShlShrInverseQuick(t *testing.T) {
	f := func(hi, lo uint64, nRaw uint8) bool {
		n := uint(nRaw % 128)
		u := U128{hi, lo}
		// Shifting left then right recovers the low bits that were not
		// pushed off the top.
		masked := u.And(Mask(128 - int(n)).Not()).Or(u.And(Mask(128 - int(n)).Not().Not()))
		_ = masked
		return u.Shl(n).Shr(n) == u.And(Mask(int(n)).Not())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestU128BitSetBit(t *testing.T) {
	var u U128
	for _, i := range []int{0, 1, 63, 64, 65, 127} {
		u = u.SetBit(i, 1)
		if u.Bit(i) != 1 {
			t.Errorf("bit %d not set", i)
		}
	}
	for _, i := range []int{0, 63, 64, 127} {
		u = u.SetBit(i, 0)
		if u.Bit(i) != 0 {
			t.Errorf("bit %d not cleared", i)
		}
	}
	if u.Bit(1) != 1 || u.Bit(65) != 1 {
		t.Error("untouched bits lost")
	}
}

func TestU128BitRoundTripQuick(t *testing.T) {
	f := func(hi, lo uint64) bool {
		u := U128{hi, lo}
		var rebuilt U128
		for i := 0; i < 128; i++ {
			rebuilt = rebuilt.SetBit(i, u.Bit(i))
		}
		return rebuilt == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestU128Cmp(t *testing.T) {
	cases := []struct {
		a, b U128
		want int
	}{
		{U128{0, 0}, U128{0, 0}, 0},
		{U128{0, 1}, U128{0, 2}, -1},
		{U128{1, 0}, U128{0, ^uint64(0)}, 1},
		{U128{5, 5}, U128{5, 5}, 0},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%+v,%+v) = %d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMask(t *testing.T) {
	if got := Mask(0); !got.IsZero() {
		t.Errorf("Mask(0) = %+v", got)
	}
	if got := Mask(64); got != (U128{^uint64(0), 0}) {
		t.Errorf("Mask(64) = %+v", got)
	}
	if got := Mask(128); got != (U128{^uint64(0), ^uint64(0)}) {
		t.Errorf("Mask(128) = %+v", got)
	}
	if got := Mask(48); got != (U128{0xffff_ffff_ffff_0000, 0}) {
		t.Errorf("Mask(48) = %+v", got)
	}
	if got := Mask(72); got != (U128{^uint64(0), 0xff00_0000_0000_0000}) {
		t.Errorf("Mask(72) = %+v", got)
	}
}

func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"2001:db8::1", "2001:db8::1", 128},
		{"2001:db8::1", "2001:db8::2", 126},
		{"2001:db8::", "2001:db9::", 31},
		{"::", "8000::", 0},
		{"2001:db8:0:1::", "2001:db8:0:2::", 62},
	}
	for _, c := range cases {
		got := CommonPrefixLen(MustAddr(c.a), MustAddr(c.b))
		if got != c.want {
			t.Errorf("CommonPrefixLen(%s,%s) = %d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLeadingZeros(t *testing.T) {
	if got := (U128{}).LeadingZeros(); got != 128 {
		t.Errorf("zero: %d", got)
	}
	if got := (U128{1, 0}).LeadingZeros(); got != 63 {
		t.Errorf("hi=1: %d", got)
	}
	if got := (U128{0, 1}).LeadingZeros(); got != 127 {
		t.Errorf("lo=1: %d", got)
	}
}

func BenchmarkCommonPrefixLen(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		addrs[i] = U128{rng.Uint64(), rng.Uint64()}.Addr()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CommonPrefixLen(addrs[i%1024], addrs[(i+1)%1024])
	}
}
