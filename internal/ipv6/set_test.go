package ipv6

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func addrsOf(ss ...string) []netip.Addr {
	out := make([]netip.Addr, len(ss))
	for i, s := range ss {
		out[i] = MustAddr(s)
	}
	return out
}

func TestNewSetSortsAndDedups(t *testing.T) {
	s := NewSet(addrsOf("2001:db8::2", "2001:db8::1", "2001:db8::2", "2001:db8::1"))
	if s.Len() != 2 {
		t.Fatalf("Len = %d want 2", s.Len())
	}
	if s.At(0) != MustAddr("2001:db8::1") || s.At(1) != MustAddr("2001:db8::2") {
		t.Errorf("order wrong: %v", s.Addrs())
	}
}

func TestSetContains(t *testing.T) {
	s := NewSet(addrsOf("2001:db8::1", "2001:db8::5", "2001:db8::9"))
	if !s.Contains(MustAddr("2001:db8::5")) {
		t.Error("missing member")
	}
	if s.Contains(MustAddr("2001:db8::6")) {
		t.Error("phantom member")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := NewSet(addrsOf("2001:db8::1", "2001:db8::2", "2001:db8::3"))
	b := NewSet(addrsOf("2001:db8::3", "2001:db8::4"))

	if got := a.Union(b).Len(); got != 4 {
		t.Errorf("union len = %d", got)
	}
	inter := a.Intersect(b)
	if inter.Len() != 1 || inter.At(0) != MustAddr("2001:db8::3") {
		t.Errorf("intersect = %v", inter.Addrs())
	}
	diff := a.Diff(b)
	if diff.Len() != 2 || diff.Contains(MustAddr("2001:db8::3")) {
		t.Errorf("diff = %v", diff.Addrs())
	}
}

func TestSetAlgebraQuick(t *testing.T) {
	// |A ∪ B| = |A| + |B| - |A ∩ B| and A\B ∪ A∩B = A, on random sets drawn
	// from a small universe to force collisions.
	f := func(xs, ys []uint8) bool {
		toSet := func(vs []uint8) *Set {
			addrs := make([]netip.Addr, len(vs))
			for i, v := range vs {
				addrs[i] = U128{0x20010db8 << 32, uint64(v)}.Addr()
			}
			return NewSet(addrs)
		}
		a, b := toSet(xs), toSet(ys)
		u := a.Union(b)
		inter := a.Intersect(b)
		if u.Len() != a.Len()+b.Len()-inter.Len() {
			return false
		}
		back := a.Diff(b).Union(inter)
		if back.Len() != a.Len() {
			return false
		}
		for _, addr := range a.Addrs() {
			if !back.Contains(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExclusive(t *testing.T) {
	sets := map[string]*Set{
		"a": NewSet(addrsOf("2001:db8::1", "2001:db8::2")),
		"b": NewSet(addrsOf("2001:db8::2", "2001:db8::3")),
		"c": NewSet(addrsOf("2001:db8::4")),
	}
	excl := Exclusive(sets)
	if excl["a"].Len() != 1 || !excl["a"].Contains(MustAddr("2001:db8::1")) {
		t.Errorf("a exclusive = %v", excl["a"].Addrs())
	}
	if excl["b"].Len() != 1 || !excl["b"].Contains(MustAddr("2001:db8::3")) {
		t.Errorf("b exclusive = %v", excl["b"].Addrs())
	}
	if excl["c"].Len() != 1 {
		t.Errorf("c exclusive = %v", excl["c"].Addrs())
	}
}

func TestPrefixSet(t *testing.T) {
	ps := NewPrefixSet([]netip.Prefix{
		netip.PrefixFrom(MustAddr("2001:db8::ff"), 48), // non-canonical
		MustPrefix("2001:db8::/48"),                    // dup after masking
		MustPrefix("2001:db8::/32"),
	})
	if ps.Len() != 2 {
		t.Fatalf("Len = %d want 2 (got %v)", ps.Len(), ps.Prefixes())
	}
	if !ps.Contains(MustPrefix("2001:db8::/48")) {
		t.Error("canonical member missing")
	}
	if !ps.Contains(netip.PrefixFrom(MustAddr("2001:db8::1"), 48)) {
		t.Error("lookup should canonicalize")
	}
	if ps.Contains(MustPrefix("2001:db9::/48")) {
		t.Error("phantom prefix")
	}
}

func TestSetLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	addrs := make([]netip.Addr, 5000)
	for i := range addrs {
		addrs[i] = U128{rng.Uint64(), rng.Uint64()}.Addr()
	}
	s := NewSet(addrs)
	// Sorted invariant.
	for i := 1; i < s.Len(); i++ {
		if !s.At(i - 1).Less(s.At(i)) {
			t.Fatalf("not strictly sorted at %d", i)
		}
	}
	for _, a := range addrs {
		if !s.Contains(a) {
			t.Fatalf("lost member %s", a)
		}
	}
}
