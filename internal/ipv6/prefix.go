package ipv6

import (
	"fmt"
	"net/netip"
)

// IID manipulation. Per RFC 4291 the low 64 bits of a unicast IPv6 address
// form the interface identifier; the paper's target synthesis methods all
// operate by replacing the IID beneath a 64-bit subnet prefix.

// WithIID returns the address whose top 64 bits come from a and whose low
// 64 bits are iid.
func WithIID(a netip.Addr, iid uint64) netip.Addr {
	u := FromAddr(a)
	u.Lo = iid
	return u.Addr()
}

// IID returns the low 64 bits (interface identifier) of a.
func IID(a netip.Addr) uint64 { return FromAddr(a).Lo }

// SubnetPrefix64 returns the covering /64 prefix of a.
func SubnetPrefix64(a netip.Addr) netip.Prefix {
	u := FromAddr(a)
	u.Lo = 0
	return netip.PrefixFrom(u.Addr(), 64)
}

// CanonicalPrefix returns p with its base address masked so that bits past
// the prefix length are zero. netip.Prefix does not canonicalize on
// construction; almost every set operation in this library wants masked
// prefixes, so callers normalize through here.
func CanonicalPrefix(p netip.Prefix) netip.Prefix {
	u := FromAddr(p.Addr()).And(Mask(p.Bits()))
	return netip.PrefixFrom(u.Addr(), p.Bits())
}

// PrefixBase returns the first address covered by p (the masked base).
func PrefixBase(p netip.Prefix) netip.Addr {
	return FromAddr(p.Addr()).And(Mask(p.Bits())).Addr()
}

// PrefixLast returns the last address covered by p.
func PrefixLast(p netip.Prefix) netip.Addr {
	return FromAddr(p.Addr()).Or(Mask(p.Bits()).Not()).Addr()
}

// NthSubprefix returns the i'th prefix of length newLen inside p
// (i counts from zero in address order). It panics if newLen < p.Bits()
// or the index is out of range for the available subprefixes.
func NthSubprefix(p netip.Prefix, newLen int, i uint64) netip.Prefix {
	if newLen < p.Bits() || newLen > 128 {
		panic(fmt.Sprintf("ipv6: NthSubprefix length %d outside [%d,128]", newLen, p.Bits()))
	}
	width := newLen - p.Bits()
	if width < 64 && width > 0 && i >= uint64(1)<<uint(width) {
		panic(fmt.Sprintf("ipv6: NthSubprefix index %d out of range for %d spare bits", i, width))
	}
	u := FromAddr(PrefixBase(p))
	off := U128{0, i}.Shl(uint(128 - newLen))
	return netip.PrefixFrom(u.Or(off).Addr(), newLen)
}

// NthAddr returns the address at offset i within p.
func NthAddr(p netip.Prefix, i uint64) netip.Addr {
	u := FromAddr(PrefixBase(p))
	return u.Add64(i).Addr()
}

// Extend widens (or narrows) p to exactly n bits as the paper's zn
// transformation does: prefixes shorter than n are extended (base address
// zero-filled past the original length), prefixes longer than n are
// aggregated up to /n. Addresses are treated as /128 prefixes.
func Extend(p netip.Prefix, n int) netip.Prefix {
	base := FromAddr(p.Addr()).And(Mask(min(p.Bits(), n)))
	return netip.PrefixFrom(base.Addr(), n)
}

// Is6to4 reports whether a falls inside 2002::/16, the 6to4 transition
// space that Table 5 tallies separately.
func Is6to4(a netip.Addr) bool {
	u := FromAddr(a)
	return uint16(u.Hi>>48) == 0x2002
}

// EUI64IID builds a modified EUI-64 interface identifier from a 48-bit MAC
// address per RFC 4291 appendix A: the MAC is split around ff:fe and the
// universal/local bit (bit 6 of the first octet) is inverted.
func EUI64IID(mac [6]byte) uint64 {
	return uint64(mac[0]^0x02)<<56 | uint64(mac[1])<<48 | uint64(mac[2])<<40 |
		0xff_fe<<24 |
		uint64(mac[3])<<16 | uint64(mac[4])<<8 | uint64(mac[5])
}

// IsEUI64IID reports whether iid has the modified EUI-64 ff:fe marker in
// the middle two octets.
func IsEUI64IID(iid uint64) bool {
	return (iid>>24)&0xffff == 0xfffe
}

// MACFromEUI64 recovers the embedded MAC address from a modified EUI-64
// IID. The second return value is false when iid lacks the ff:fe marker.
func MACFromEUI64(iid uint64) ([6]byte, bool) {
	if !IsEUI64IID(iid) {
		return [6]byte{}, false
	}
	return [6]byte{
		byte(iid>>56) ^ 0x02,
		byte(iid >> 48),
		byte(iid >> 40),
		byte(iid >> 16),
		byte(iid >> 8),
		byte(iid),
	}, true
}
