package ipv6

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestDPLsSimple(t *testing.T) {
	// Three addresses: first two share 126 bits (differ at bit 127... i.e.
	// DPL 127), third is far away.
	s := NewSet(addrsOf("2001:db8::1", "2001:db8::2", "2001:db9::1"))
	dpls := DPLs(s)
	// Sorted order: 2001:db8::1, 2001:db8::2, 2001:db9::1.
	// ::1 vs ::2 differ in low nibble: common prefix 126 → DPL 127.
	if dpls[0] != 127 || dpls[1] != 127 {
		t.Errorf("neighbor DPLs = %v want 127,127", dpls[:2])
	}
	// 2001:db9::1 vs 2001:db8::2: db8 vs db9 differ at bit 32 (0-based 31),
	// common prefix 31 → DPL 32.
	if dpls[2] != 32 {
		t.Errorf("outlier DPL = %d want 32", dpls[2])
	}
}

func TestDPLsDegenerate(t *testing.T) {
	if got := DPLs(EmptySet()); len(got) != 0 {
		t.Errorf("empty: %v", got)
	}
	one := NewSet(addrsOf("2001:db8::1"))
	if got := DPLs(one); len(got) != 1 || got[0] != 0 {
		t.Errorf("singleton: %v", got)
	}
}

func TestDPLMatchesPaperSemantics(t *testing.T) {
	// "over 70% of the fiebig-z64 target addresses have DPL of 64, meaning
	// the addresses share the top 63 bits": construct adjacent /64s and
	// verify DPL 64.
	s := NewSet(addrsOf("2001:db8:0:0::1", "2001:db8:0:1::1"))
	dpls := DPLs(s)
	if dpls[0] != 64 || dpls[1] != 64 {
		t.Errorf("adjacent /64 DPLs = %v want 64,64", dpls)
	}
}

func TestDPLsBruteForceQuick(t *testing.T) {
	// The sorted-neighbor shortcut must agree with the O(n^2) definition:
	// DPL(a) = 1 + max_{b≠a} CommonPrefixLen(a,b).
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 24 {
			raw = raw[:24]
		}
		addrs := make([]netip.Addr, len(raw))
		for i, v := range raw {
			addrs[i] = U128{0x2001_0db8_0000_0000, uint64(v)}.Addr()
		}
		s := NewSet(addrs)
		if s.Len() < 2 {
			return true
		}
		got := DPLs(s)
		for i := 0; i < s.Len(); i++ {
			best := 0
			for j := 0; j < s.Len(); j++ {
				if i == j {
					continue
				}
				if l := CommonPrefixLen(s.At(i), s.At(j)); l > best {
					best = l
				}
			}
			if got[i] != best+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDPLHistogramAndCDF(t *testing.T) {
	s := NewSet(addrsOf("2001:db8:0:0::1", "2001:db8:0:1::1", "2001:db9::1"))
	h := DPLHistogram(s)
	if h[64] != 2 {
		t.Errorf("h[64] = %d want 2", h[64])
	}
	if h[32] != 1 {
		t.Errorf("h[32] = %d want 1", h[32])
	}
	cdf := DPLCDF(s)
	if cdf[128] != 1.0 {
		t.Errorf("cdf[128] = %f want 1", cdf[128])
	}
	if cdf[31] != 0 {
		t.Errorf("cdf[31] = %f want 0", cdf[31])
	}
	if got := cdf[32]; got < 0.33 || got > 0.34 {
		t.Errorf("cdf[32] = %f want ~1/3", got)
	}
}

func TestDPLCapsAt64ForZ64LowbyteTargets(t *testing.T) {
	// All z64+lowbyte1 targets share an identical IID, so any two distinct
	// targets differ inside the top 64 bits: DPL can never exceed 64. This
	// is why Figure 3's x axis ends at 64.
	rng := rand.New(rand.NewSource(3))
	addrs := make([]netip.Addr, 500)
	for i := range addrs {
		addrs[i] = U128{rng.Uint64(), 1}.Addr()
	}
	for _, d := range DPLs(NewSet(addrs)) {
		if d > 64 {
			t.Fatalf("DPL %d > 64 for z64 lowbyte targets", d)
		}
	}
}

func TestPairDPL(t *testing.T) {
	a, b := MustAddr("2001:db8::1"), MustAddr("2001:db8::2")
	if got := PairDPL(a, b); got != 127 {
		t.Errorf("PairDPL = %d want 127", got)
	}
	if got := PairDPL(a, a); got != 129 {
		t.Errorf("identical PairDPL = %d want 129", got)
	}
}
