package faultsim

import (
	"errors"
	"testing"
	"time"
)

func TestPlanResolution(t *testing.T) {
	cfg := &Config{Seed: 7, Rules: []Rule{
		{Vantage: "A", Shard: 1, Kind: KindCrash, At: 5 * time.Second},
		{Vantage: "A", Shard: MatchAnyShard, Kind: KindStall, At: time.Second, Duration: time.Second},
		{Vantage: "", Shard: MatchAnyShard, Kind: KindTransientSend, Prob: 0.25},
		{Vantage: "B", Shard: 0, Kind: KindCorruptReply, Prob: 0.5},
	}}

	a1 := cfg.PlanFor("A", "", 1)
	if !a1.Active() || !a1.CrashNow(5*time.Second) || a1.CrashNow(5*time.Second-1) {
		t.Fatalf("A/1 crash schedule wrong: %+v", a1)
	}
	if !a1.Stalled(1500*time.Millisecond) || a1.Stalled(2*time.Second) || a1.Stalled(time.Second-1) {
		t.Fatalf("A/1 stall window wrong")
	}

	a0 := cfg.PlanFor("A", "", 0)
	if a0.CrashNow(time.Hour) {
		t.Fatal("crash rule for shard 1 leaked to shard 0")
	}
	if !a0.Active() {
		t.Fatal("A/0 should still carry the stall + wildcard transient rules")
	}

	b3 := cfg.PlanFor("B", "", 3)
	if b3.corruptProb != 0 {
		t.Fatal("corrupt rule for shard 0 leaked to shard 3")
	}
	if b3.transientProb != 0.25 {
		t.Fatal("wildcard transient rule should match every vantage")
	}

	var nilCfg *Config
	if p := nilCfg.PlanFor("A", "", 0); p.Active() {
		t.Fatal("nil config must resolve to an inert plan")
	}
}

// TestDrawsDeterministicAndCalibrated: draws are pure functions of
// (seed, subject, instant) and land near the configured probability.
func TestDrawsDeterministicAndCalibrated(t *testing.T) {
	cfg := &Config{Seed: 99, Rules: []Rule{
		{Shard: MatchAnyShard, Kind: KindTransientSend, Prob: 0.2},
		{Shard: MatchAnyShard, Kind: KindTruncateReply, Prob: 0.35},
	}}
	p := cfg.PlanFor("V", "", 0)
	q := cfg.PlanFor("V", "", 0)

	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		at := time.Duration(i) * time.Millisecond
		if p.DrawTransient(42, at) != q.DrawTransient(42, at) {
			t.Fatal("transient draw not deterministic")
		}
		if p.DrawTruncate(42, at) != q.DrawTruncate(42, at) {
			t.Fatal("truncate draw not deterministic")
		}
		if p.DrawTransient(42, at) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.18 || got > 0.22 {
		t.Fatalf("transient hit rate %.3f far from configured 0.2", got)
	}

	// Different fault seeds must reschedule the draws.
	cfg2 := &Config{Seed: 100, Rules: cfg.Rules}
	p2 := cfg2.PlanFor("V", "", 0)
	same := 0
	for i := 0; i < 1000; i++ {
		at := time.Duration(i) * time.Millisecond
		if p.DrawTransient(42, at) == p2.DrawTransient(42, at) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("fault seed does not influence the draw schedule")
	}
}

func TestDelayBurst(t *testing.T) {
	cfg := &Config{Rules: []Rule{
		{Shard: MatchAnyShard, Kind: KindDelayBurst, At: 2 * time.Second, Duration: time.Second},
	}}
	p := cfg.PlanFor("V", "", 0)
	if at, ok := p.DelayedUntil(2500 * time.Millisecond); !ok || at != 3*time.Second {
		t.Fatalf("in-window delivery not pushed to window end: %v %v", at, ok)
	}
	if _, ok := p.DelayedUntil(3 * time.Second); ok {
		t.Fatal("delivery at window end must pass through")
	}
	if _, ok := p.DelayedUntil(time.Second); ok {
		t.Fatal("pre-window delivery must pass through")
	}
}

func TestCorruptAt(t *testing.T) {
	cfg := &Config{Rules: []Rule{{Shard: MatchAnyShard, Kind: KindCorruptReply, Prob: 1}}}
	p := cfg.PlanFor("V", "", 0)
	off, mask := p.CorruptAt(7, time.Second, 64)
	if off < 0 || off >= 64 {
		t.Fatalf("corrupt offset %d outside span", off)
	}
	if mask == 0 {
		t.Fatal("corrupt mask must flip at least one bit")
	}
	off2, mask2 := p.CorruptAt(7, time.Second, 64)
	if off != off2 || mask != mask2 {
		t.Fatal("corrupt placement not deterministic")
	}
}

func TestErrorTypes(t *testing.T) {
	var err error = &TransientSendError{Vantage: "V", At: time.Second}
	var tr interface{ Transient() bool }
	if !errors.As(err, &tr) || !tr.Transient() {
		t.Fatal("TransientSendError must classify as transient")
	}
	err = &CrashError{Vantage: "V", Shard: 2, At: time.Second}
	if errors.As(err, &tr) {
		t.Fatal("CrashError must not classify as transient")
	}
	if err.Error() == "" {
		t.Fatal("empty error string")
	}
}

// TestCampaignAddressing: rules with a Campaign tag apply only to
// vantage clones carrying exactly that tag; untagged rules match every
// campaign including untagged vantages.
func TestCampaignAddressing(t *testing.T) {
	cfg := &Config{Seed: 3, Rules: []Rule{
		{Vantage: "V", Campaign: "tenant-a/c1", Shard: MatchAnyShard, Kind: KindCrash, At: time.Second},
		{Campaign: "tenant-b/c2", Shard: MatchAnyShard, Kind: KindTransientSend, Prob: 0.5},
		{Vantage: "V", Shard: MatchAnyShard, Kind: KindStall, At: time.Minute, Duration: time.Second},
	}}

	a := cfg.PlanFor("V", "tenant-a/c1", 2)
	if !a.CrashNow(time.Second) {
		t.Fatal("campaign-addressed crash rule must hit its campaign's clones")
	}
	if a.transientProb != 0 {
		t.Fatal("other campaign's transient rule leaked")
	}
	if !a.Stalled(time.Minute) {
		t.Fatal("campaign-less rule must still match tagged vantages")
	}

	b := cfg.PlanFor("V", "tenant-b/c2", 0)
	if b.CrashNow(time.Hour) {
		t.Fatal("crash rule for tenant-a leaked to tenant-b")
	}
	if b.transientProb != 0.5 {
		t.Fatal("tenant-b transient rule missing")
	}

	untagged := cfg.PlanFor("V", "", 0)
	if untagged.CrashNow(time.Hour) || untagged.transientProb != 0 {
		t.Fatal("campaign-addressed rules must not match untagged vantages")
	}
	if !untagged.Stalled(time.Minute) {
		t.Fatal("campaign-less rule must match untagged vantages")
	}
}
