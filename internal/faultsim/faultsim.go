// Package faultsim is the deterministic fault-injection plane for the
// simulated internetwork. It describes the failure modes real scanners
// meet in the wild — vantages that stall or crash mid-campaign,
// truncated or corrupted ICMPv6 replies, EAGAIN-shaped transient send
// errors, and delivery that stalls and then arrives in a burst — as
// pure functions of virtual time, so a faulted run is exactly as
// reproducible as a clean one.
//
// Every probabilistic draw is a keyed hash of (fault seed, subject
// identity, absolute virtual instant) — never a stream RNG — extending
// the netsim draw-constant space: netsim owns draws 40-44, faultsim
// owns 45 and up. Two campaigns with the same seed and schedule
// therefore fault identically, packet for packet, which is what lets
// the chaos tests assert byte-identical resume behaviour underneath an
// actively misbehaving network.
package faultsim

import (
	"fmt"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// KindCrash makes the vantage's send path fail fatally from instant
	// At onward: every send returns a *CrashError. Models a prober host
	// dying mid-campaign.
	KindCrash Kind = iota
	// KindStall silently swallows everything the vantage sends inside
	// [At, At+Duration): the probe departs, nothing ever comes back.
	// Models an upstream blackhole or a wedged NIC queue.
	KindStall
	// KindTransientSend fails individual sends with probability Prob,
	// returning a *TransientSendError (EAGAIN-shaped: the packet was
	// not sent and the same send may succeed a moment later).
	KindTransientSend
	// KindTruncateReply truncates replies to the vantage with
	// probability Prob, cutting the ICMPv6 quotation short so probe
	// state recovery fails.
	KindTruncateReply
	// KindCorruptReply flips a byte inside the reply payload with
	// probability Prob.
	KindCorruptReply
	// KindDelayBurst holds replies whose delivery would land inside
	// [At, At+Duration) and releases them all at At+Duration. Models a
	// queue that wedges and then drains at once.
	KindDelayBurst
)

// String names the fault class for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindStall:
		return "stall"
	case KindTransientSend:
		return "transient-send"
	case KindTruncateReply:
		return "truncate-reply"
	case KindCorruptReply:
		return "corrupt-reply"
	case KindDelayBurst:
		return "delay-burst"
	}
	return "unknown"
}

// MatchAnyShard in Rule.Shard matches every clone ordinal of the
// vantage.
const MatchAnyShard = -1

// Rule injects one fault class at one vantage. Rules are matched when a
// vantage (or a clone of it) is created, so rule order never matters
// and the packet path pays nothing for rules that do not apply to it.
type Rule struct {
	// Vantage names the afflicted vantage; "" matches every vantage.
	Vantage string
	// Campaign names the afflicted campaign: vantages (and their shard
	// clones) carry a campaign tag when they probe on behalf of a
	// supervised campaign, and a rule with a non-empty Campaign applies
	// only to vantages tagged with exactly that name. "" matches every
	// campaign (including untagged vantages). This is what lets a chaos
	// soak afflict one tenant's campaign while its neighbours on the
	// same universe — even on the same vantage name — run clean.
	Campaign string
	// Shard selects one clone ordinal of the vantage (clones are
	// numbered 0, 1, 2, … in creation order within a shard group —
	// campaign shard s probes through clone s), or MatchAnyShard.
	// The parent vantage itself has ordinal 0.
	Shard int
	// Kind is the fault class to inject.
	Kind Kind
	// At is the activation instant in the vantage's virtual time
	// (Crash, Stall, DelayBurst).
	At time.Duration
	// Duration is the fault window length (Stall, DelayBurst).
	Duration time.Duration
	// Prob is the per-packet fault probability in [0, 1]
	// (TransientSend, TruncateReply, CorruptReply).
	Prob float64
}

// Config is the fault plane configuration, attached to a simulated
// universe via netsim.Config.Faults. A nil Config injects nothing and
// costs nothing.
type Config struct {
	// Seed keys every fault draw, independently of the universe seed,
	// so fault schedules can be varied without moving the topology.
	Seed uint64
	// Rules lists the faults to inject.
	Rules []Rule
}

// matches reports whether the rule applies to the given vantage clone,
// identified by vantage name, campaign tag, and clone ordinal.
func (r *Rule) matches(vantage, campaign string, shard int) bool {
	if r.Vantage != "" && r.Vantage != vantage {
		return false
	}
	if r.Campaign != "" && r.Campaign != campaign {
		return false
	}
	return r.Shard == MatchAnyShard || r.Shard == shard
}

// Plan is one vantage clone's resolved fault schedule: the subset of
// the configured rules that applies to it, flattened into flags the
// packet path can test with single comparisons. The zero Plan injects
// nothing.
type Plan struct {
	seed uint64

	crashArmed bool
	crashAt    time.Duration

	stallArmed bool
	stallAt    time.Duration
	stallEnd   time.Duration

	delayArmed bool
	delayAt    time.Duration
	delayEnd   time.Duration

	transientProb float64
	truncateProb  float64
	corruptProb   float64
}

// PlanFor resolves the rules applying to one vantage clone. campaign is
// the clone's campaign tag ("" when untagged). Multiple rules of the
// same windowed kind keep the earliest activation; probabilities
// combine by keeping the largest.
func (c *Config) PlanFor(vantage, campaign string, shard int) Plan {
	var p Plan
	if c == nil {
		return p
	}
	p.seed = mix64(c.Seed ^ 0xfa171a5e)
	for i := range c.Rules {
		r := &c.Rules[i]
		if !r.matches(vantage, campaign, shard) {
			continue
		}
		switch r.Kind {
		case KindCrash:
			if !p.crashArmed || r.At < p.crashAt {
				p.crashArmed, p.crashAt = true, r.At
			}
		case KindStall:
			if !p.stallArmed || r.At < p.stallAt {
				p.stallArmed, p.stallAt, p.stallEnd = true, r.At, r.At+r.Duration
			}
		case KindDelayBurst:
			if !p.delayArmed || r.At < p.delayAt {
				p.delayArmed, p.delayAt, p.delayEnd = true, r.At, r.At+r.Duration
			}
		case KindTransientSend:
			if r.Prob > p.transientProb {
				p.transientProb = r.Prob
			}
		case KindTruncateReply:
			if r.Prob > p.truncateProb {
				p.truncateProb = r.Prob
			}
		case KindCorruptReply:
			if r.Prob > p.corruptProb {
				p.corruptProb = r.Prob
			}
		}
	}
	return p
}

// Active reports whether the plan injects anything at all, so the
// packet path can guard every fault check behind one boolean.
func (p *Plan) Active() bool {
	return p.crashArmed || p.stallArmed || p.delayArmed ||
		p.transientProb > 0 || p.truncateProb > 0 || p.corruptProb > 0
}

// CrashNow reports whether the vantage's send path is dead at now.
func (p *Plan) CrashNow(now time.Duration) bool {
	return p.crashArmed && now >= p.crashAt
}

// CrashAt returns the armed crash instant (valid when CrashNow has
// fired or crash is armed).
func (p *Plan) CrashAt() (time.Duration, bool) { return p.crashAt, p.crashArmed }

// Stalled reports whether sends at now vanish into the stall window.
func (p *Plan) Stalled(now time.Duration) bool {
	return p.stallArmed && now >= p.stallAt && now < p.stallEnd
}

// DelayedUntil maps a delivery instant through the delay-burst window:
// deliveries landing inside it are released at the window end.
func (p *Plan) DelayedUntil(at time.Duration) (time.Duration, bool) {
	if p.delayArmed && at >= p.delayAt && at < p.delayEnd {
		return p.delayEnd, true
	}
	return at, false
}

// Draw constants continue netsim's per-packet draw space (40-44).
const (
	drawTransient = 45
	drawTruncate  = 46
	drawCorrupt   = 47
)

// DrawTransient decides whether one send attempt fails transiently.
// subject is the vantage identity key; now is the attempt instant —
// paced senders attempt at distinct instants, so a retry one gap later
// redraws independently.
func (p *Plan) DrawTransient(subject uint64, now time.Duration) bool {
	if p.transientProb <= 0 {
		return false
	}
	return hashFloat(h3(p.seed^subject, drawTransient, uint64(now))) < p.transientProb
}

// DrawTruncate decides whether one reply is truncated. pk is the
// per-packet key netsim derives from (flow, hop limit); now is the
// probe's send instant.
func (p *Plan) DrawTruncate(pk uint64, now time.Duration) bool {
	if p.truncateProb <= 0 {
		return false
	}
	return hashFloat(h3(p.seed^pk, drawTruncate, uint64(now))) < p.truncateProb
}

// DrawCorrupt decides whether one reply is corrupted.
func (p *Plan) DrawCorrupt(pk uint64, now time.Duration) bool {
	if p.corruptProb <= 0 {
		return false
	}
	return hashFloat(h3(p.seed^pk, drawCorrupt, uint64(now))) < p.corruptProb
}

// CorruptAt picks the byte offset (within a span of writable bytes) and
// the XOR mask for one corrupted reply. The mask is never zero, so a
// corrupt draw always changes the packet.
func (p *Plan) CorruptAt(pk uint64, now time.Duration, span int) (off int, mask byte) {
	key := h3(p.seed^pk, drawCorrupt+1, uint64(now))
	mask = byte(key >> 56)
	if mask == 0 {
		mask = 0xff
	}
	return int(key % uint64(span)), mask
}

// CrashError is the fatal send failure a crashed vantage returns. It is
// not transient: the campaign quarantines the shard and re-shards its
// remaining work.
type CrashError struct {
	Vantage string
	Shard   int
	At      time.Duration
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("faultsim: vantage %s (clone %d) crashed at %v", e.Vantage, e.Shard, e.At)
}

// TransientSendError is the EAGAIN-shaped per-packet send failure: the
// packet was not sent, and retrying the same send later may succeed.
type TransientSendError struct {
	Vantage string
	At      time.Duration
}

func (e *TransientSendError) Error() string {
	return fmt.Sprintf("faultsim: transient send error at vantage %s at %v", e.Vantage, e.At)
}

// Transient marks the error retryable for probe.IsTransient.
func (e *TransientSendError) Transient() bool { return true }

// mix64 is the SplitMix64 finalizer, the same mixer netsim's keyed
// draws use; replicated here so the fault plane stays dependency-free.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// h3 hashes a (seed, draw constant, instant) triple.
func h3(seed, draw, now uint64) uint64 {
	const gamma = 0x9e3779b97f4a7c15
	x := seed
	x = mix64(x ^ (draw * gamma))
	x = mix64(x ^ (now * gamma))
	return x
}

// hashFloat maps a hash key to [0, 1) with 53-bit precision, matching
// netsim's draw quantization.
func hashFloat(key uint64) float64 {
	return float64(key>>11) / (1 << 53)
}
