// Package sixgen implements 6Gen-style target generation after Murdock et
// al. (IMC 2017), the generative seed source the paper evaluates as
// "6gen".
//
// 6Gen exploits address locality: clusters of observed addresses identify
// dense regions, and new probe targets are generated inside each cluster's
// nybble pattern. In tight mode a differing nybble position ranges over
// the observed values' span; in loose mode (the paper's configuration) it
// wildcards over all sixteen values. Cluster density — seeds per pattern
// size — orders generation so the densest regions are explored first.
package sixgen

import (
	"net/netip"
	"sort"

	"beholder/internal/ipv6"
)

// Mode selects range construction for differing nybbles.
type Mode int

// Clustering modes.
const (
	Tight Mode = iota // span of observed values per nybble
	Loose             // any differing nybble wildcards to 0..f
)

// Config parameterizes generation.
type Config struct {
	Mode Mode
	// Budget caps the number of generated targets.
	Budget int
	// MaxClusterSpan bounds a cluster's pattern size; candidate merges
	// that would exceed it start a new cluster. This is 6Gen's guard
	// against degenerate clusters swallowing the whole space.
	MaxClusterSpan uint64
}

// DefaultConfig mirrors the paper's loose-mode usage.
func DefaultConfig(budget int) Config {
	return Config{Mode: Loose, Budget: budget, MaxClusterSpan: 1 << 20}
}

// Cluster is a nybble pattern covering one or more seeds.
type Cluster struct {
	// vals[i] is the bitmask of nybble values observed at position i
	// (position 0 is the most significant nybble).
	vals  [32]uint16
	Seeds int
}

// Span returns the number of addresses the cluster's pattern covers under
// mode m.
func (c *Cluster) Span(m Mode) uint64 {
	span := uint64(1)
	for _, v := range c.vals {
		n := uint64(popcount16(v))
		if n > 1 && m == Loose {
			n = 16
		}
		if n == 0 {
			n = 1
		}
		// Saturate instead of overflowing.
		if span > 1<<40 {
			return 1 << 40
		}
		span *= n
	}
	return span
}

// Density is seeds per covered address.
func (c *Cluster) Density(m Mode) float64 {
	return float64(c.Seeds) / float64(c.Span(m))
}

// Mask returns the bitmask of nybble values observed at position i
// (position 0 is the most significant nybble, bit v set means value v
// was observed).
func (c *Cluster) Mask(i int) uint16 { return c.vals[i] }

// Clusters groups the seeds into pattern clusters sorted densest-first —
// the clustering half of Generate, exported so adaptive generation
// (internal/gen6prob) can seed its prefix trie from the same density
// prior that orders 6Gen enumeration.
func Clusters(seeds []netip.Addr, cfg Config) []*Cluster {
	if cfg.MaxClusterSpan == 0 {
		cfg.MaxClusterSpan = 1 << 20
	}
	clusters := clusterize(seeds, cfg)
	sort.SliceStable(clusters, func(i, j int) bool {
		return clusters[i].Density(cfg.Mode) > clusters[j].Density(cfg.Mode)
	})
	return clusters
}

// Nybbles splits an address into its 32 nybbles, most significant
// first.
func Nybbles(a netip.Addr) [32]uint8 { return nybbles(a) }

func popcount16(v uint16) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

func nybbles(a netip.Addr) [32]uint8 {
	u := ipv6.FromAddr(a)
	var out [32]uint8
	for i := 0; i < 16; i++ {
		out[i] = uint8(u.Hi>>(60-4*i)) & 0xf
		out[16+i] = uint8(u.Lo>>(60-4*i)) & 0xf
	}
	return out
}

// clusterize groups sorted seeds greedily: a seed joins the current
// cluster unless the merge would push the pattern span past the limit.
func clusterize(seeds []netip.Addr, cfg Config) []*Cluster {
	sorted := make([]netip.Addr, len(seeds))
	copy(sorted, seeds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })

	var clusters []*Cluster
	var cur *Cluster
	for _, s := range sorted {
		nyb := nybbles(s)
		if cur != nil {
			merged := *cur
			for i, v := range nyb {
				merged.vals[i] |= 1 << v
			}
			merged.Seeds++
			if merged.Span(cfg.Mode) <= cfg.MaxClusterSpan {
				*cur = merged
				continue
			}
		}
		cur = &Cluster{Seeds: 1}
		for i, v := range nyb {
			cur.vals[i] = 1 << v
		}
		clusters = append(clusters, cur)
	}
	return clusters
}

// Generate produces up to cfg.Budget target addresses from the seeds,
// ordered so that denser clusters contribute first. Seed addresses
// themselves are included in their clusters' enumerations.
func Generate(seeds []netip.Addr, cfg Config) []netip.Addr {
	if len(seeds) == 0 || cfg.Budget <= 0 {
		return nil
	}
	if cfg.MaxClusterSpan == 0 {
		cfg.MaxClusterSpan = 1 << 20
	}
	clusters := clusterize(seeds, cfg)
	sort.SliceStable(clusters, func(i, j int) bool {
		return clusters[i].Density(cfg.Mode) > clusters[j].Density(cfg.Mode)
	})

	// Round-robin enumeration across clusters by density rank: every
	// cluster advances through its pattern space one address per round,
	// so high-density regions are not starved by a single huge cluster.
	enums := make([]*patternEnum, len(clusters))
	for i, c := range clusters {
		enums[i] = newPatternEnum(c, cfg.Mode)
	}
	seen := make(map[netip.Addr]struct{}, cfg.Budget)
	var out []netip.Addr
	active := len(enums)
	for active > 0 && len(out) < cfg.Budget {
		active = 0
		for _, e := range enums {
			if e.done {
				continue
			}
			a, ok := e.next()
			if !ok {
				continue
			}
			active++
			if _, dup := seen[a]; dup {
				continue
			}
			seen[a] = struct{}{}
			out = append(out, a)
			if len(out) >= cfg.Budget {
				break
			}
		}
	}
	return out
}

// patternEnum walks a cluster's pattern space in mixed-radix order.
type patternEnum struct {
	allowed [32][]uint8 // values per position
	idx     [32]int     // current digit indices
	done    bool
}

func newPatternEnum(c *Cluster, m Mode) *patternEnum {
	e := &patternEnum{}
	for i, mask := range c.vals {
		n := popcount16(mask)
		if m == Loose && n > 1 {
			for v := uint8(0); v < 16; v++ {
				e.allowed[i] = append(e.allowed[i], v)
			}
			continue
		}
		for v := uint8(0); v < 16; v++ {
			if mask&(1<<v) != 0 {
				e.allowed[i] = append(e.allowed[i], v)
			}
		}
		if len(e.allowed[i]) == 0 {
			e.allowed[i] = []uint8{0}
		}
	}
	return e
}

func (e *patternEnum) next() (netip.Addr, bool) {
	if e.done {
		return netip.Addr{}, false
	}
	var u ipv6.U128
	for i := 0; i < 32; i++ {
		v := uint64(e.allowed[i][e.idx[i]])
		if i < 16 {
			u.Hi |= v << (60 - 4*i)
		} else {
			u.Lo |= v << (60 - 4*(i-16))
		}
	}
	// Increment from the least significant position.
	for i := 31; i >= 0; i-- {
		e.idx[i]++
		if e.idx[i] < len(e.allowed[i]) {
			break
		}
		e.idx[i] = 0
		if i == 0 {
			e.done = true
		}
	}
	return u.Addr(), true
}
