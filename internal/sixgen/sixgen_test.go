package sixgen

import (
	"net/netip"
	"testing"

	"beholder/internal/ipv6"
)

func seedsOf(ss ...string) []netip.Addr {
	out := make([]netip.Addr, len(ss))
	for i, s := range ss {
		out[i] = ipv6.MustAddr(s)
	}
	return out
}

func TestGenerateCoversSeedCluster(t *testing.T) {
	// Four seeds differing in one nybble: tight mode enumerates exactly
	// the observed values at that position.
	seeds := seedsOf("2001:db8::1", "2001:db8::2", "2001:db8::3", "2001:db8::4")
	got := Generate(seeds, Config{Mode: Tight, Budget: 100, MaxClusterSpan: 1 << 20})
	if len(got) != 4 {
		t.Fatalf("tight mode generated %d targets: %v", len(got), got)
	}
	want := map[netip.Addr]bool{}
	for _, s := range seeds {
		want[s] = true
	}
	for _, a := range got {
		if !want[a] {
			t.Errorf("tight mode generated %s outside observed values", a)
		}
	}
}

func TestLooseModeWildcards(t *testing.T) {
	// Two seeds differing in the last nybble: loose mode wildcards it,
	// generating all 16 values.
	seeds := seedsOf("2001:db8::a1", "2001:db8::a2")
	got := Generate(seeds, DefaultConfig(100))
	if len(got) != 16 {
		t.Fatalf("loose mode generated %d targets, want 16", len(got))
	}
	seen := map[netip.Addr]bool{}
	for _, a := range got {
		seen[a] = true
	}
	for v := 0; v < 16; v++ {
		a := ipv6.WithIID(ipv6.MustAddr("2001:db8::"), 0xa0|uint64(v))
		if !seen[a] {
			t.Errorf("missing wildcard value %s", a)
		}
	}
}

func TestBudgetRespected(t *testing.T) {
	seeds := seedsOf("2001:db8::11", "2001:db8::22", "2001:db8::33")
	got := Generate(seeds, DefaultConfig(10))
	if len(got) > 10 {
		t.Errorf("budget exceeded: %d", len(got))
	}
}

func TestDenseClustersFirst(t *testing.T) {
	// A dense cluster (8 seeds in a /124-equivalent pattern) and a lone
	// outlier: the first generated targets must come from the dense
	// region.
	var seeds []netip.Addr
	for i := 0; i < 8; i++ {
		seeds = append(seeds, ipv6.WithIID(ipv6.MustAddr("2001:db8::"), uint64(i)))
	}
	outlier := ipv6.MustAddr("2620:99::1234:5678:9abc:def0")
	seeds = append(seeds, outlier)
	got := Generate(seeds, DefaultConfig(16))
	if len(got) == 0 {
		t.Fatal("nothing generated")
	}
	// Seeds themselves reproduce first (singleton clusters have perfect
	// density); the first novel address must come from the dense region.
	isSeed := map[netip.Addr]bool{}
	for _, s := range seeds {
		isSeed[s] = true
	}
	densePrefix := ipv6.MustPrefix("2001:db8::/64")
	for _, a := range got {
		if isSeed[a] {
			continue
		}
		if !densePrefix.Contains(a) {
			t.Errorf("first novel target %s not from the dense cluster", a)
		}
		break
	}
}

func TestClusterSpanGuard(t *testing.T) {
	// Seeds scattered across unrelated prefixes must not merge into one
	// cluster whose loose span devours the budget with junk: each seed
	// becomes its own (singleton) cluster and is emitted itself.
	seeds := seedsOf(
		"2001:db8::1",
		"2620:42:7:9:aaaa:bbbb:cccc:dddd",
		"2a02:1234:5678:9abc:def0:1111:2222:3333",
	)
	got := Generate(seeds, Config{Mode: Loose, Budget: 50, MaxClusterSpan: 256})
	seen := map[netip.Addr]bool{}
	for _, a := range got {
		seen[a] = true
	}
	for _, s := range seeds {
		if !seen[s] {
			t.Errorf("seed %s not reproduced by its singleton cluster", s)
		}
	}
}

func TestGenerateDegenerate(t *testing.T) {
	if got := Generate(nil, DefaultConfig(10)); got != nil {
		t.Errorf("nil seeds: %v", got)
	}
	if got := Generate(seedsOf("2001:db8::1"), DefaultConfig(0)); got != nil {
		t.Errorf("zero budget: %v", got)
	}
	// Single seed: the cluster is the seed itself.
	got := Generate(seedsOf("2001:db8::1"), DefaultConfig(10))
	if len(got) != 1 || got[0] != ipv6.MustAddr("2001:db8::1") {
		t.Errorf("single seed: %v", got)
	}
}

func TestNoDuplicateTargets(t *testing.T) {
	var seeds []netip.Addr
	for i := 0; i < 32; i++ {
		seeds = append(seeds, ipv6.WithIID(ipv6.MustAddr("2400:1::"), uint64(i*3)))
	}
	got := Generate(seeds, DefaultConfig(1000))
	seen := map[netip.Addr]bool{}
	for _, a := range got {
		if seen[a] {
			t.Fatalf("duplicate target %s", a)
		}
		seen[a] = true
	}
}

func TestSpanSaturation(t *testing.T) {
	var c Cluster
	for i := range c.vals {
		c.vals[i] = 0xffff
	}
	c.Seeds = 1
	if got := c.Span(Loose); got != 1<<40 {
		t.Errorf("span should saturate at 2^40, got %d", got)
	}
	if d := c.Density(Loose); d <= 0 {
		t.Errorf("density %f", d)
	}
}
