package trace

import (
	"net/netip"

	"beholder/internal/probe"
)

// DoubletreeConfig parameterizes the Doubletree prober.
type DoubletreeConfig struct {
	Engine EngineConfig
	// StartTTL is the intermediate starting hop distance h — the
	// parameter the paper criticizes as requiring per-vantage heuristic
	// estimation. Default 5.
	StartTTL uint8
	// MaxTTL bounds forward probing. Default 16.
	MaxTTL uint8
	// GapLimit stops forward probing after consecutive silence.
	GapLimit int
}

func (c *DoubletreeConfig) setDefaults() {
	c.Engine.setDefaults()
	if c.StartTTL == 0 {
		c.StartTTL = 5
	}
	if c.MaxTTL == 0 {
		c.MaxTTL = 16
	}
	if c.GapLimit <= 0 {
		c.GapLimit = 5
	}
}

// Doubletree implements Donnet et al.'s cooperative topology prober for a
// single vantage: each trace starts at an intermediate TTL h, probes
// forward (increasing TTL) until it reaches the destination or a path
// segment already explored (the global stop set), then probes backward
// (decreasing TTL) until it meets an interface already discovered from
// this monitor (the local stop set).
//
// Two behaviours the paper documents are reproduced deliberately:
// backward probing does not stop on silence, so once ICMPv6 rate limiting
// makes a near hop unresponsive Doubletree keeps spending probes on it
// and its even-more-shared predecessors, holding their token buckets
// empty; and the stop sets fill in unprobed path portions from previous
// traces, trading probe volume for potential path inaccuracy.
type Doubletree struct {
	conn probe.Conn
	cfg  DoubletreeConfig

	local  map[netip.Addr]struct{} // interfaces seen from this monitor
	global map[netip.Addr]struct{} // interfaces seen during forward probing
}

// NewDoubletree creates the prober.
func NewDoubletree(conn probe.Conn, cfg DoubletreeConfig) *Doubletree {
	cfg.setDefaults()
	return &Doubletree{
		conn:   conn,
		cfg:    cfg,
		local:  make(map[netip.Addr]struct{}),
		global: make(map[netip.Addr]struct{}),
	}
}

// Run traces every target, folding results into store.
func (d *Doubletree) Run(targets []netip.Addr, store *probe.Store) Stats {
	e := newEngine(d.conn, d.cfg.Engine, store)
	return e.run(targets, func(netip.Addr) strategy {
		return &dtStrategy{owner: d, e: e, ttl: d.cfg.StartTTL, phase: dtForward}
	})
}

// LocalStopSetSize reports how many interfaces the monitor accumulated.
func (d *Doubletree) LocalStopSetSize() int { return len(d.local) }

type dtPhase int

const (
	dtForward dtPhase = iota
	dtBackward
	dtDone
)

type dtStrategy struct {
	owner *Doubletree
	e     *engine
	phase dtPhase
	ttl   uint8
	gaps  int
}

func (s *dtStrategy) next() (uint8, bool) {
	switch s.phase {
	case dtForward:
		if s.ttl > s.owner.cfg.MaxTTL {
			s.startBackward()
			return s.next()
		}
		return s.ttl, false
	case dtBackward:
		if s.ttl < 1 {
			s.phase = dtDone
			return 0, true
		}
		return s.ttl, false
	}
	return 0, true
}

func (s *dtStrategy) startBackward() {
	s.phase = dtBackward
	if s.owner.cfg.StartTTL > 1 {
		s.ttl = s.owner.cfg.StartTTL - 1
	} else {
		s.phase = dtDone
	}
	s.gaps = 0
}

func (s *dtStrategy) observe(ev event) {
	switch s.phase {
	case dtForward:
		if ev.timeout {
			s.gaps++
			if s.gaps >= s.owner.cfg.GapLimit {
				s.startBackward()
				return
			}
			s.ttl++
			return
		}
		s.gaps = 0
		r := ev.reply
		switch r.Kind {
		case probe.KindEchoReply, probe.KindTCPRst, probe.KindDestUnreach:
			// Destination (or its gateway) reached: flip to backward.
			s.startBackward()
			return
		case probe.KindTimeExceeded:
			if _, known := s.owner.global[r.From]; known {
				// Converged onto a previously explored path: the rest of
				// the forward path is filled in from prior results.
				s.e.stats.StopSetHits++
				s.startBackward()
				return
			}
			s.owner.global[r.From] = struct{}{}
			s.owner.local[r.From] = struct{}{}
			s.ttl++
		}
	case dtBackward:
		if !ev.timeout && ev.reply.Kind == probe.KindTimeExceeded {
			if _, known := s.owner.local[ev.reply.From]; known {
				// Paths from one monitor share early hops: stop.
				s.e.stats.StopSetHits++
				s.phase = dtDone
				return
			}
			s.owner.local[ev.reply.From] = struct{}{}
		}
		// Silence does NOT stop backward probing — the pathological
		// interaction with rate limiting the paper observed.
		s.ttl--
	}
}
