// Package trace implements the stateful baseline probers the paper
// compares Yarrp6 against: a scamper-like sequential ICMP-Paris
// traceroute and Doubletree (Donnet et al., SIGMETRICS 2005).
//
// Both run on a shared windowed engine: up to Window traces are in flight
// at once, each a small state machine that advances when its outstanding
// probe resolves or times out. Because every trace in a window starts at
// the same point and probe RTTs are similar, traces advance through TTLs
// in near-lockstep — exactly the "per-TTL bursty behaviour ... traces
// remain synchronized" the paper measured in packet captures of the
// sequential prober, and the reason randomized probing wins at high rates
// (Figure 5).
package trace

import (
	"net/netip"
	"time"

	"beholder/internal/probe"
	"beholder/internal/telemetry"
	"beholder/internal/wire"
)

// EngineConfig holds the knobs shared by the stateful probers.
type EngineConfig struct {
	// PPS is the aggregate probe departure rate. Default 100.
	PPS float64
	// Proto is the probe transport (default ICMPv6, as CAIDA's production
	// probing uses ICMP-Paris).
	Proto uint8
	// Window is the number of concurrent traces. Default 64.
	Window int
	// Timeout is the per-probe reply deadline. Default 500ms.
	Timeout time.Duration
	// Attempts is how many times an unresponsive hop is retried. Default 1.
	Attempts int
	// Synchronized runs the window in strict global rounds: every trace
	// sends its next probe, then the engine waits for the round to
	// resolve before any trace advances. This reproduces the "per-TTL
	// bursty behaviour ... traces remain synchronized" the paper measured
	// in the sequential prober's packet captures, and is what collapses
	// its near-hop responsiveness at high rates (Figure 5). Without it
	// the window desynchronizes within a few RTTs.
	Synchronized bool
	// Telemetry, when non-nil, receives each run's counters (trace_*
	// metrics) in one end-of-run fold — the stateful probers are
	// windowed and low-rate, so per-event instrumentation buys nothing.
	Telemetry *telemetry.Shard
}

func (c *EngineConfig) setDefaults() {
	if c.PPS <= 0 {
		c.PPS = 100
	}
	if c.Proto == 0 {
		c.Proto = wire.ProtoICMPv6
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.Timeout <= 0 {
		c.Timeout = 500 * time.Millisecond
	}
	if c.Attempts <= 0 {
		c.Attempts = 1
	}
}

// Stats summarizes a stateful campaign.
type Stats struct {
	ProbesSent  int64
	Retries     int64
	DestReached int64
	StopSetHits int64 // probes avoided by Doubletree stop sets
	Elapsed     time.Duration
}

// event is a resolved probe outcome delivered to a strategy.
type event struct {
	ttl     uint8
	timeout bool
	reply   probe.Reply
}

// strategy drives one trace's TTL schedule.
type strategy interface {
	// next returns the next TTL to probe, or done.
	next() (ttl uint8, done bool)
	// observe feeds the outcome of the previous probe.
	observe(ev event)
}

// traceState tracks one in-flight trace.
type traceState struct {
	target  netip.Addr
	strat   strategy
	pending bool
	ttl     uint8
	sentAt  time.Duration
	tries   int
	done    bool
}

// engine runs trace state machines against a vantage.
type engine struct {
	conn  probe.Conn
	cfg   EngineConfig
	codec *probe.Codec
	store *probe.Store
	stats Stats

	pkt    []byte
	rbuf   []byte
	active map[netip.Addr]*traceState // keyed by target for reply routing
	// order holds the live traces in admission order. Send loops iterate
	// it — never the map — so probe order is deterministic: stateful
	// probers must emit the same (packet, time) schedule on every run
	// for campaigns to reproduce (map iteration order would otherwise
	// leak into the schedule and, through the simulator's per-packet
	// draws, into results).
	order []*traceState

	// observer, when set, sees every stored reply (used by Doubletree to
	// maintain stop sets and by responsiveness analyses).
	observer func(probe.Reply)
}

func newEngine(conn probe.Conn, cfg EngineConfig, store *probe.Store) *engine {
	cfg.setDefaults()
	codec := probe.NewCodec(conn, cfg.Proto, 0)
	// A windowed tracer probes each in-flight destination once per TTL
	// round; a cache covering a few windows of targets serves them.
	codec.SetProbeCache(2048)
	return &engine{
		conn:   conn,
		cfg:    cfg,
		codec:  codec,
		store:  store,
		pkt:    make([]byte, 128),
		rbuf:   make([]byte, wire.MinMTU),
		active: make(map[netip.Addr]*traceState),
	}
}

// run processes targets through newStrategy until all traces complete.
func (e *engine) run(targets []netip.Addr, newStrategy func(target netip.Addr) strategy) Stats {
	if e.cfg.Synchronized {
		return e.runSynchronized(targets, newStrategy)
	}
	start := e.conn.Now()
	gap := time.Duration(float64(time.Second) / e.cfg.PPS)
	next := 0 // next target index to admit

	for next < len(targets) || len(e.active) > 0 {
		// Admit new traces into the window.
		for len(e.active) < e.cfg.Window && next < len(targets) {
			t := targets[next]
			next++
			if _, dup := e.active[t]; dup {
				continue
			}
			ts := &traceState{target: t, strat: newStrategy(t)}
			e.active[t] = ts
			e.order = append(e.order, ts)
		}
		progressed := false
		live := e.order[:0]
		for _, ts := range e.order {
			if ts.done {
				continue
			}
			if ts.pending {
				if e.conn.Now()-ts.sentAt >= e.cfg.Timeout {
					e.resolve(ts, event{ttl: ts.ttl, timeout: true})
					progressed = true
				}
				live = append(live, ts)
				continue
			}
			ttl, done := ts.strat.next()
			if done {
				ts.done = true
				delete(e.active, ts.target)
				progressed = true
				continue
			}
			n := e.codec.BuildProbe(e.pkt, ts.target, ttl)
			if err := e.conn.Send(e.pkt[:n]); err != nil {
				ts.done = true
				delete(e.active, ts.target)
				continue
			}
			e.stats.ProbesSent++
			ts.pending = true
			ts.ttl = ttl
			ts.sentAt = e.conn.Now()
			e.conn.Sleep(gap)
			e.drain()
			progressed = true
			live = append(live, ts)
		}
		e.order = live
		if !progressed {
			// Everything is awaiting replies: let time pass.
			e.conn.Sleep(5 * time.Millisecond)
			e.drain()
		}
	}
	e.stats.Elapsed = e.conn.Now() - start
	e.publishTelemetry()
	return e.stats
}

// runSynchronized advances a whole window of traces in lockstep TTL
// rounds, admitting the next window batch only when the current one
// completes — scamper-style synchronized operation.
func (e *engine) runSynchronized(targets []netip.Addr, newStrategy func(target netip.Addr) strategy) Stats {
	start := e.conn.Now()
	gap := time.Duration(float64(time.Second) / e.cfg.PPS)
	next := 0
	for next < len(targets) || len(e.active) > 0 {
		for len(e.active) < e.cfg.Window && next < len(targets) {
			t := targets[next]
			next++
			if _, dup := e.active[t]; dup {
				continue
			}
			ts := &traceState{target: t, strat: newStrategy(t)}
			e.active[t] = ts
			e.order = append(e.order, ts)
		}
		// One synchronized round: every live trace emits its next probe
		// back to back (the per-TTL burst), then the round resolves.
		var sent []*traceState
		live := e.order[:0]
		for _, ts := range e.order {
			if ts.done {
				continue
			}
			ttl, done := ts.strat.next()
			if done {
				ts.done = true
				delete(e.active, ts.target)
				continue
			}
			n := e.codec.BuildProbe(e.pkt, ts.target, ttl)
			if err := e.conn.Send(e.pkt[:n]); err != nil {
				ts.done = true
				delete(e.active, ts.target)
				continue
			}
			e.stats.ProbesSent++
			ts.pending = true
			ts.ttl = ttl
			ts.sentAt = e.conn.Now()
			sent = append(sent, ts)
			e.conn.Sleep(gap)
			e.drain()
			live = append(live, ts)
		}
		e.order = live
		// Wait out the round: replies resolve traces; stragglers time out
		// and may retry (resolve re-arms them), so loop until quiescent.
		anyPending := func() bool {
			for _, ts := range sent {
				if ts.pending {
					return true
				}
			}
			return false
		}
		for {
			deadline := e.conn.Now() + e.cfg.Timeout
			for e.conn.Now() < deadline && anyPending() {
				e.conn.Sleep(2 * time.Millisecond)
				e.drain()
			}
			if !anyPending() {
				break
			}
			for _, ts := range sent {
				if ts.pending {
					e.resolve(ts, event{ttl: ts.ttl, timeout: true})
				}
			}
			if !anyPending() {
				break
			}
		}
	}
	e.stats.Elapsed = e.conn.Now() - start
	e.publishTelemetry()
	return e.stats
}

// publishTelemetry folds one run's counters into the configured
// telemetry shard.
func (e *engine) publishTelemetry() {
	sh := e.cfg.Telemetry
	if sh == nil {
		return
	}
	sh.Counter("trace_probes_sent_total").Add(e.stats.ProbesSent)
	sh.Counter("trace_retries_total").Add(e.stats.Retries)
	sh.Counter("trace_dest_reached_total").Add(e.stats.DestReached)
	sh.Counter("trace_stopset_hits_total").Add(e.stats.StopSetHits)
	sh.Flush()
}

// resolve feeds an outcome to a trace, honoring the retry budget for
// timeouts.
func (e *engine) resolve(ts *traceState, ev event) {
	if ev.timeout && ts.tries+1 < e.cfg.Attempts {
		// Retry the same TTL.
		ts.tries++
		e.stats.Retries++
		n := e.codec.BuildProbe(e.pkt, ts.target, ts.ttl)
		if err := e.conn.Send(e.pkt[:n]); err == nil {
			e.stats.ProbesSent++
			ts.sentAt = e.conn.Now()
			return
		}
	}
	ts.tries = 0
	ts.pending = false
	ts.strat.observe(ev)
}

// drain routes replies to their traces and the store.
func (e *engine) drain() {
	for {
		n, ok := e.conn.Recv(e.rbuf)
		if !ok {
			return
		}
		r, ok := e.codec.ParseReply(e.rbuf[:n])
		if !ok {
			continue
		}
		e.store.Add(r)
		if e.observer != nil {
			e.observer(r)
		}
		if r.Kind == probe.KindEchoReply || r.Kind == probe.KindTCPRst ||
			(r.Kind == probe.KindDestUnreach && r.Code == wire.CodePortUnreachable) {
			e.stats.DestReached++
		}
		ts := e.active[r.Target]
		if ts == nil || !ts.pending {
			continue
		}
		// Destination responses resolve whatever TTL is outstanding;
		// hop responses resolve only their own TTL.
		if r.TTL != 0 && r.TTL != ts.ttl && r.Kind == probe.KindTimeExceeded {
			continue
		}
		e.resolve(ts, event{ttl: ts.ttl, reply: r})
	}
}
