package trace

import (
	"net/netip"

	"beholder/internal/probe"
)

// SequentialConfig parameterizes the scamper-like prober.
type SequentialConfig struct {
	Engine EngineConfig
	// MaxTTL bounds the per-trace TTL walk. Default 16.
	MaxTTL uint8
	// GapLimit stops a trace after this many consecutive unresponsive
	// hops (scamper's default is 5).
	GapLimit int
}

func (c *SequentialConfig) setDefaults() {
	c.Engine.setDefaults()
	if c.MaxTTL == 0 {
		c.MaxTTL = 16
	}
	if c.GapLimit <= 0 {
		c.GapLimit = 5
	}
}

// Sequential is a stateful, per-destination increasing-TTL traceroute in
// the mold of scamper's ICMP-Paris mode: the current production technique
// at CAIDA Ark and RIPE Atlas, and the paper's baseline in Figure 5.
type Sequential struct {
	conn probe.Conn
	cfg  SequentialConfig
}

// NewSequential creates the prober. Sequential probing always runs the
// engine synchronized: the paper's packet captures show scamper's traces
// advancing TTLs in lockstep bursts, which is precisely the behaviour
// under study in Figure 5.
func NewSequential(conn probe.Conn, cfg SequentialConfig) *Sequential {
	cfg.setDefaults()
	cfg.Engine.Synchronized = true
	return &Sequential{conn: conn, cfg: cfg}
}

// Run traces every target, folding results into store.
func (s *Sequential) Run(targets []netip.Addr, store *probe.Store) Stats {
	e := newEngine(s.conn, s.cfg.Engine, store)
	return e.run(targets, func(netip.Addr) strategy {
		return &seqStrategy{maxTTL: s.cfg.MaxTTL, gapLimit: s.cfg.GapLimit}
	})
}

type seqStrategy struct {
	ttl      uint8
	maxTTL   uint8
	gapLimit int
	gaps     int
	stopped  bool
}

func (s *seqStrategy) next() (uint8, bool) {
	if s.stopped || s.ttl >= s.maxTTL {
		return 0, true
	}
	s.ttl++
	return s.ttl, false
}

func (s *seqStrategy) observe(ev event) {
	if ev.timeout {
		s.gaps++
		if s.gaps >= s.gapLimit {
			s.stopped = true
		}
		return
	}
	s.gaps = 0
	switch ev.reply.Kind {
	case probe.KindEchoReply, probe.KindTCPRst:
		s.stopped = true
	case probe.KindDestUnreach:
		// Any unreachable means further TTLs cannot do better.
		s.stopped = true
	}
}
