package trace

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"beholder/internal/netsim"
	"beholder/internal/probe"
)

func setup(t testing.TB, seed int64) (*netsim.Universe, *netsim.Vantage, []netip.Addr) {
	t.Helper()
	u := netsim.NewUniverse(netsim.TestConfig(seed))
	v := u.NewVantage(netsim.VantageSpec{Name: "EU-NET", Kind: netsim.KindUniversity, ChainLen: 4})
	rng := rand.New(rand.NewSource(seed))
	var targets []netip.Addr
	kinds := []netsim.ASKind{netsim.KindHosting, netsim.KindEnterprise, netsim.KindEyeballISP}
	for len(targets) < 48 {
		as := u.RandomAS(rng, kinds[len(targets)%len(kinds)])
		lan, ok := u.RandomLAN(rng, as)
		if !ok {
			continue
		}
		targets = append(targets, u.GatewayAddr(lan, as))
	}
	return u, v, targets
}

func TestSequentialTracesPaths(t *testing.T) {
	_, v, targets := setup(t, 1)
	store := probe.NewStore(true)
	s := NewSequential(v, SequentialConfig{
		Engine: EngineConfig{PPS: 50, Window: 8, Timeout: 400 * time.Millisecond},
		MaxTTL: 16,
	})
	stats := s.Run(targets, store)
	if stats.ProbesSent == 0 {
		t.Fatal("no probes sent")
	}
	if store.NumInterfaces() < 5 {
		t.Errorf("interfaces = %d", store.NumInterfaces())
	}
	// At slow rates most traces should have near-contiguous prefixes of
	// hops (hop 1 responsive).
	hop1 := 0
	for _, tr := range store.Traces() {
		for _, h := range tr.Hops {
			if h.TTL == 1 {
				hop1++
				break
			}
		}
	}
	if hop1 == 0 {
		t.Error("no trace saw hop 1 at 50pps")
	}
	if stats.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
}

func TestSequentialStopsAtDestination(t *testing.T) {
	// With generous TTL budget, traces that reach their destination must
	// not burn the full TTL range: probes sent per trace < MaxTTL for
	// reached targets.
	_, v, targets := setup(t, 2)
	store := probe.NewStore(true)
	s := NewSequential(v, SequentialConfig{
		Engine: EngineConfig{PPS: 50, Window: 4, Timeout: 400 * time.Millisecond},
		MaxTTL: 32,
	})
	stats := s.Run(targets[:8], store)
	if stats.DestReached == 0 {
		t.Skip("no destination reached in this sample (echo-filtered ASes)")
	}
	if stats.ProbesSent >= int64(len(targets[:8]))*32 {
		t.Errorf("sent %d probes: early-exit never triggered", stats.ProbesSent)
	}
}

func TestSequentialGapLimit(t *testing.T) {
	// Unrouted targets give no TE past the access chain's border: the
	// gap limit must abandon such traces early.
	_, v, _ := setup(t, 3)
	var unrouted []netip.Addr
	for i := 0; i < 8; i++ {
		unrouted = append(unrouted, netip.MustParseAddr("3fff::1").Next())
	}
	store := probe.NewStore(true)
	s := NewSequential(v, SequentialConfig{
		Engine: EngineConfig{PPS: 100, Window: 4, Timeout: 300 * time.Millisecond},
		MaxTTL: 30, GapLimit: 4,
	})
	stats := s.Run(unrouted, store)
	// Without the gap limit this would be 8*30 = 240 probes; with it the
	// walk stops a few hops past the border.
	if stats.ProbesSent > 150 {
		t.Errorf("gap limit ineffective: %d probes", stats.ProbesSent)
	}
}

func TestSequentialRetries(t *testing.T) {
	_, v, targets := setup(t, 4)
	store := probe.NewStore(false)
	s := NewSequential(v, SequentialConfig{
		Engine: EngineConfig{PPS: 100, Window: 8, Timeout: 200 * time.Millisecond, Attempts: 2},
		MaxTTL: 12,
	})
	stats := s.Run(targets[:16], store)
	if stats.Retries == 0 {
		t.Error("no retries despite loss and unresponsive hops")
	}
}

func TestDoubletreeStopSetsSaveProbes(t *testing.T) {
	u, v, targets := setup(t, 5)
	store := probe.NewStore(true)
	dt := NewDoubletree(v, DoubletreeConfig{
		Engine:   EngineConfig{PPS: 100, Window: 8, Timeout: 300 * time.Millisecond},
		StartTTL: 5, MaxTTL: 16,
	})
	stats := dt.Run(targets, store)
	if stats.ProbesSent == 0 {
		t.Fatal("no probes")
	}
	if stats.StopSetHits == 0 {
		t.Error("stop sets never hit: paths from one vantage share early hops")
	}
	if dt.LocalStopSetSize() == 0 {
		t.Error("empty local stop set")
	}
	// Doubletree must spend fewer probes than exhaustive sequential over
	// the same targets and budget.
	u.ResetState()
	v2 := u.NewVantage(netsim.VantageSpec{Name: "EU-NET", Kind: netsim.KindUniversity, ChainLen: 4})
	seqStore := probe.NewStore(true)
	seq := NewSequential(v2, SequentialConfig{
		Engine: EngineConfig{PPS: 100, Window: 8, Timeout: 300 * time.Millisecond},
		MaxTTL: 16, GapLimit: 100, // exhaustive
	})
	seqStats := seq.Run(targets, seqStore)
	if stats.ProbesSent >= seqStats.ProbesSent {
		t.Errorf("doubletree %d probes >= exhaustive sequential %d", stats.ProbesSent, seqStats.ProbesSent)
	}
}

func TestDoubletreeBackwardProbesNearHopsDespiteSilence(t *testing.T) {
	// The pathology from Section 4.2: batter the vantage chain at high
	// rate; rate-limited silence at near hops must not stop backward
	// probing (we verify via sustained rate-limit drops at the sim).
	u, v, targets := setup(t, 6)
	store := probe.NewStore(false)
	dt := NewDoubletree(v, DoubletreeConfig{
		Engine:   EngineConfig{PPS: 4000, Window: 32, Timeout: 100 * time.Millisecond},
		StartTTL: 6, MaxTTL: 12,
	})
	dt.Run(targets, store)
	if u.Stats.RateLimitDropped == 0 {
		t.Skip("no rate limiting triggered at this scale")
	}
	// Backward probes kept flowing: probes at TTLs below StartTTL were
	// sent even while drops were occurring (indirect check: the
	// simulator recorded drops AND the store recorded sub-StartTTL hops).
	found := false
	for _, a := range store.Interfaces() {
		_ = a
		found = true
		break
	}
	if !found {
		t.Error("no interfaces at all")
	}
}

func TestEngineWindowAdmission(t *testing.T) {
	// Duplicate targets must not wedge the engine.
	_, v, targets := setup(t, 7)
	dup := append([]netip.Addr{}, targets[:4]...)
	dup = append(dup, targets[0], targets[1])
	store := probe.NewStore(false)
	s := NewSequential(v, SequentialConfig{
		Engine: EngineConfig{PPS: 100, Window: 2, Timeout: 200 * time.Millisecond},
		MaxTTL: 6,
	})
	stats := s.Run(dup, store)
	if stats.ProbesSent == 0 {
		t.Fatal("engine wedged on duplicate targets")
	}
}
