package beholder

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesRun smoke-tests every examples/* program: each must build,
// exit 0, and produce non-empty output, so the examples in the README
// cannot silently rot as the API moves. The programs run in parallel;
// each finishes in a few seconds of wall time on the small universe.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples build and run whole campaigns; skipped with -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		ran++
		name := ent.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./"+filepath.ToSlash(filepath.Join("examples", name)))
			cmd.Dir = root
			var stdout, stderr bytes.Buffer
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("examples/%s failed: %v\nstderr:\n%s", name, err, stderr.String())
			}
			if stdout.Len() == 0 && stderr.Len() == 0 {
				t.Fatalf("examples/%s produced no output", name)
			}
		})
	}
	if ran == 0 {
		t.Fatal("no example programs found")
	}
}
