package beholder

// Probing-methodology experiments: Tables 3, 4, 6, Figure 5, and the
// Section 4.2 protocol and Doubletree studies.

import (
	"net/netip"
	"time"

	"beholder/internal/analysis"
	"beholder/internal/core"
	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/target"
	"beholder/internal/trace"
	"beholder/internal/wire"
)

// trialVantage creates the canonical trial vantage on pristine state.
func (e *Experiments) trialVantage(idx int) *netsim.Vantage {
	e.in.Reset()
	spec := vantageSpecs[idx]
	return e.in.u.NewVantage(netsim.VantageSpec{Name: spec.name, Kind: spec.kind, ChainLen: spec.chain})
}

// runTrial executes one non-cached campaign and returns its store and
// stats.
func (e *Experiments) runTrial(v *netsim.Vantage, targets []netip.Addr, cfg core.Config) (*probe.Store, core.Stats) {
	store := probe.NewStore(true)
	cfg.Targets = targets
	if cfg.PPS == 0 {
		cfg.PPS = e.opt.Rate
	}
	y := core.New(v, cfg)
	stats, err := y.Run(store)
	if err != nil {
		panic("beholder: trial failed: " + err.Error())
	}
	return store, stats
}

// Table3 reproduces "ICMPv6 Trial Results by Transformation": probing
// the fdns seeds at z40/z48/z56/z64 — finer aggregation costs more
// probes but discovers disproportionately many interfaces, including
// many found at no other level.
func (e *Experiments) Table3() *Table {
	levels := []int{40, 48, 56, 64}
	type res struct {
		probes int64
		other  int64
		ifaces map[netip.Addr]struct{}
	}
	results := make(map[int]*res)
	for _, n := range levels {
		set := e.targetSet("fdns_any", n, target.FixedIID)
		v := e.trialVantage(0)
		store, stats := e.runTrial(v, set.Targets.Addrs(), core.Config{MaxTTL: 16, Key: uint64(n)})
		r := &res{probes: stats.ProbesSent, other: store.OtherICMPv6(), ifaces: make(map[netip.Addr]struct{})}
		store.ForEachInterface(func(a netip.Addr) { r.ifaces[a] = struct{}{} })
		results[n] = r
	}
	// Exclusive interfaces per level.
	mult := make(map[netip.Addr]int)
	for _, r := range results {
		for a := range r.ifaces {
			mult[a]++
		}
	}
	t := &Table{
		ID:      "Table 3",
		Title:   "ICMPv6 Trial Results by Transformation (fdns seeds)",
		Headers: []string{"zn", "Probes", "Other ICMPv6", "Addrs", "Excl Addrs"},
	}
	for _, n := range levels {
		r := results[n]
		excl := 0
		for a := range r.ifaces {
			if mult[a] == 1 {
				excl++
			}
		}
		t.AddRow("/"+itoa(n), kfmt(r.probes), kfmt(r.other), kfmt(int64(len(r.ifaces))), kfmt(int64(excl)))
	}
	t.Notes = append(t.Notes,
		"Expected shape: z64 costs several times z40's probes, discovers a multiple of its addresses, and has a higher non-Time-Exceeded rate (probes reach deeper).")
	return t
}

// Table4 reproduces "ICMPv6 Trial Results by IID": the response
// type/code mix when synthesizing targets with lowbyte1 versus fixediid
// (cdn-k256 z64) versus probing known addresses (fiebig).
func (e *Experiments) Table4() *Table {
	type mix struct {
		te, noRoute, admin, addrU, portU, reject int64
	}
	collect := func(store *probe.Store) mix {
		return mix{
			te:      store.TimeExceeded,
			noRoute: store.DestUnreachByCode[wire.CodeNoRoute],
			admin:   store.DestUnreachByCode[wire.CodeAdminProhibited],
			addrU:   store.DestUnreachByCode[wire.CodeAddrUnreachable],
			portU:   store.DestUnreachByCode[wire.CodePortUnreachable],
			reject:  store.DestUnreachByCode[wire.CodeRejectRoute],
		}
	}
	var mixes []mix
	var labels []string

	for _, synth := range []target.Synth{target.LowByte1, target.FixedIID} {
		set := e.targetSet("cdn-k256", 64, synth)
		v := e.trialVantage(0)
		// UDP probes so port-unreachable can appear, as with the paper's
		// transport trials toward known hosts.
		store, _ := e.runTrial(v, set.Targets.Addrs(), core.Config{MaxTTL: 16, Proto: wire.ProtoUDP, Key: 44})
		mixes = append(mixes, collect(store))
		labels = append(labels, "CDN-k256 z64 "+synth.String())
	}
	known := e.targetSet("fiebig", 0, target.Known)
	v := e.trialVantage(0)
	store, _ := e.runTrial(v, known.Targets.Addrs(), core.Config{MaxTTL: 16, Proto: wire.ProtoUDP, Key: 45})
	mixes = append(mixes, collect(store))
	labels = append(labels, "Fiebig known")

	t := &Table{
		ID:      "Table 4",
		Title:   "ICMPv6 Trial Results by IID (response type/code mix)",
		Headers: append([]string{"type/code"}, labels...),
	}
	row := func(name string, get func(mix) int64) {
		cells := []string{name}
		for _, m := range mixes {
			total := m.te + m.noRoute + m.admin + m.addrU + m.portU + m.reject
			if total == 0 {
				cells = append(cells, "0.0%")
				continue
			}
			cells = append(cells, pct(float64(get(m))/float64(total)))
		}
		t.AddRow(cells...)
	}
	row("Time Exceeded", func(m mix) int64 { return m.te })
	row("no route to destination", func(m mix) int64 { return m.noRoute })
	row("administratively prohibited", func(m mix) int64 { return m.admin })
	row("address unreachable", func(m mix) int64 { return m.addrU })
	row("port unreachable", func(m mix) int64 { return m.portU })
	row("reject route to destination", func(m mix) int64 { return m.reject })
	t.Notes = append(t.Notes,
		"Expected shape: Time Exceeded dominates; lowbyte1 vs fixediid differ negligibly; known-address probing elicits markedly more port unreachable (probes reach end hosts).")
	return t
}

// Table6 reproduces "Fill Mode Trial Results": the probes/fills/yield
// tradeoff across maximum TTL choices, motivating maxTTL=16.
func (e *Experiments) Table6() *Table {
	set := e.targetSet("caida", 64, target.LowByte1)
	t := &Table{
		ID:      "Table 6",
		Title:   "Fill Mode Trial Results (caida targets, fill limit 32)",
		Headers: []string{"MaxTTL", "Probes", "Fills", "Int Addrs", "Yield %"},
	}
	for _, maxTTL := range []uint8{4, 8, 16, 32} {
		v := e.trialVantage(0)
		fill := maxTTL < 32
		store, stats := e.runTrial(v, set.Targets.Addrs(), core.Config{
			MaxTTL: maxTTL, Fill: fill, FillLimit: 32, Key: uint64(maxTTL),
		})
		yield := 0.0
		if stats.ProbesSent > 0 {
			yield = float64(store.NumInterfaces()) / float64(stats.ProbesSent) * 100
		}
		t.AddRow(itoa(int(maxTTL)), kfmt(stats.ProbesSent), kfmt(stats.Fills),
			kfmt(int64(store.NumInterfaces())), fmtF(yield, 1))
	}
	t.Notes = append(t.Notes,
		"Expected shape: an intermediate MaxTTL maximizes yield per probe; 32 wastes probes past path ends, tiny MaxTTLs strand fill mode behind unresponsive hops.")
	return t
}

// Figure5 reproduces "probing strategy, rate, and per-hop
// responsiveness" at two vantage points: sequential versus randomized
// probing of the caida targets at 20, 1000, and 2000 pps.
func (e *Experiments) Figure5() (a, b *Figure) {
	const maxTTL = 16
	set := e.targetSet("caida", 64, target.LowByte1)
	targets := set.Targets.Addrs()
	rates := []float64{20, 1000, 2000}

	build := func(vidx int) *Figure {
		fig := &Figure{
			ID:     "Figure 5" + string(rune('a'+vidx)),
			Title:  "Per-hop responsiveness by method and rate (vantage " + vantageSpecs[vidx+1].name + ")",
			XLabel: "IPv6 hop",
			YLabel: "fraction responsive (traces)",
		}
		for _, rate := range rates {
			// Sequential: scamper-like windowed prober; traces advance
			// TTLs in near-lockstep, producing per-TTL bursts.
			v := e.trialVantage(vidx + 1)
			seqStore := probe.NewStore(true)
			seq := trace.NewSequential(v, trace.SequentialConfig{
				Engine: trace.EngineConfig{PPS: rate, Window: len(targets), Timeout: 300 * time.Millisecond},
				MaxTTL: maxTTL, GapLimit: maxTTL, // exhaustive: measure responsiveness, not early exit
			})
			seq.Run(targets, seqStore)
			fig.Series = append(fig.Series, perHopSeries("sequential "+kfmt(int64(rate))+"pps",
				seqStore, maxTTL, len(targets)))

			// Yarrp6: randomized.
			v = e.trialVantage(vidx + 1)
			yStore, _ := e.runTrial(v, targets, core.Config{MaxTTL: maxTTL, PPS: rate, Key: uint64(rate)})
			fig.Series = append(fig.Series, perHopSeries("yarrp (rand) "+kfmt(int64(rate))+"pps",
				yStore, maxTTL, len(targets)))
		}
		fig.Notes = append(fig.Notes,
			"Expected shape: methods tie at 20pps; at 1k/2kpps sequential's hop-1 responsiveness collapses under ICMPv6 rate limiting while randomized stays near its slow-rate level.")
		return fig
	}
	return build(0), build(1)
}

func perHopSeries(name string, store *probe.Store, maxTTL, denom int) analysis.Series {
	resp := analysis.PerHopResponsiveness(store, maxTTL, denom)
	s := analysis.Series{Name: name}
	for i, f := range resp {
		s.X = append(s.X, float64(i+1))
		s.Y = append(s.Y, f)
	}
	return s
}

// ProtocolComparison reproduces the Section 4.2 transport trial: probing
// the caida targets with ICMPv6, UDP, and TCP at low rate. ICMPv6 should
// edge out the others in interfaces and produce the most non-Time-
// Exceeded responses.
func (e *Experiments) ProtocolComparison() *Table {
	set := e.targetSet("caida", 64, target.LowByte1)
	t := &Table{
		ID:      "Protocol (§4.2)",
		Title:   "Transport protocol trial (caida targets, 20pps-equivalent)",
		Headers: []string{"Transport", "Int Addrs", "Non-TE ICMPv6", "Reached"},
	}
	for _, p := range []struct {
		name  string
		proto uint8
	}{{"ICMPv6", wire.ProtoICMPv6}, {"UDP", wire.ProtoUDP}, {"TCP", wire.ProtoTCP}} {
		v := e.trialVantage(0)
		store, _ := e.runTrial(v, set.Targets.Addrs(), core.Config{MaxTTL: 16, Proto: p.proto, Key: 77})
		reached := 0
		for _, tr := range store.Traces() {
			if tr.Reached {
				reached++
			}
		}
		t.AddRow(p.name, kfmt(int64(store.NumInterfaces())), kfmt(store.OtherICMPv6()), kfmt(int64(reached)))
	}
	t.Notes = append(t.Notes,
		"Expected shape: ICMPv6 discovers slightly more interfaces than UDP/TCP (transport filtering) and elicits more non-TE responses.")
	return t
}

// DoubletreeStudy reproduces the Section 4.2 Doubletree observations:
// probe savings from stop sets, and the backward-probing pathology that
// keeps near-hop token buckets drained under rate limiting.
func (e *Experiments) DoubletreeStudy() *Table {
	set := e.targetSet("caida", 64, target.LowByte1)
	targets := set.Targets.Addrs()
	t := &Table{
		ID:      "Doubletree (§4.2)",
		Title:   "Doubletree vs Yarrp6 under rate limiting (caida targets)",
		Headers: []string{"Method", "Rate", "Probes", "Int Addrs", "Hop-1 Resp", "RateLimit Drops"},
	}
	for _, rate := range []float64{100, 2000} {
		v := e.trialVantage(0)
		dtStore := probe.NewStore(true)
		dt := trace.NewDoubletree(v, trace.DoubletreeConfig{
			Engine:   trace.EngineConfig{PPS: rate, Window: 256},
			StartTTL: 5, MaxTTL: 16,
		})
		dtStats := dt.Run(targets, dtStore)
		dtResp := analysis.PerHopResponsiveness(dtStore, 16, len(targets))
		dtDrops := e.in.u.Stats.RateLimitDropped
		t.AddRow("doubletree", kfmt(int64(rate))+"pps", kfmt(dtStats.ProbesSent),
			kfmt(int64(dtStore.NumInterfaces())), pct(dtResp[0]), kfmt(dtDrops))

		v = e.trialVantage(0)
		yStore, yStats := e.runTrial(v, targets, core.Config{MaxTTL: 16, PPS: rate, Key: uint64(rate) + 9})
		yResp := analysis.PerHopResponsiveness(yStore, 16, len(targets))
		t.AddRow("yarrp6", kfmt(int64(rate))+"pps", kfmt(yStats.ProbesSent),
			kfmt(int64(yStore.NumInterfaces())), pct(yResp[0]), kfmt(e.in.u.Stats.RateLimitDropped))
	}
	t.Notes = append(t.Notes,
		"Expected shape: Doubletree saves probes via stop sets but its backward probing keeps draining near-hop buckets at high rate; Yarrp6 sustains hop-1 responsiveness.")
	return t
}
