package beholder

// Adaptive-generation experiments: the closed-loop follow-on study.
// gen6prob's probabilistic prefix trie — seeded from the same 6Gen
// density prior the static pipelines use — grows its target set epoch
// by epoch from discovery feedback, and is scored against the static
// pipelines at equal probe budget. The comparison the paper's Section 5
// gestures at (density predicts discovery) becomes a measured table:
// budget steered toward answering regions buys more interfaces per
// probe than any fixed target set.

import (
	"math/rand"
	"net/netip"
	"time"

	"beholder/internal/alias"
	"beholder/internal/core"
	"beholder/internal/gen6prob"
	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/sixgen"
	"beholder/internal/target"
	"beholder/internal/wire"
)

// adaptiveStudyBudget is the equal probe budget every AdaptiveStudy
// pipeline gets: 256 targets' worth of 16-TTL schedules.
const adaptiveStudyBudget = 4096

// AdaptiveStudy compares closed-loop adaptive generation against the
// static pipelines at equal probe budget, all from the EU-NET vantage
// on pristine per-run router state. The static rows probe a fixed
// target set derived from the dnsdb seeds (lowbyte synthesis and 6Gen
// enumeration); the adaptive row seeds gen6prob with the same observed
// addresses and lets epoch feedback re-weight its trie between batches.
func (e *Experiments) AdaptiveStudy() *Table {
	const maxTTL = 16
	ttlSpan := int64(maxTTL)
	nTargets := int(adaptiveStudyBudget / ttlSpan)
	seedAddrs := e.seedLists()["dnsdb"].Addrs.Addrs()
	key := uint64(e.opt.Seed) ^ 0xada7

	t := &Table{
		ID:      "Adaptive (follow-on)",
		Title:   "Adaptive probabilistic generation vs static pipelines at equal budget (EU-NET, dnsdb seeds)",
		Headers: []string{"Pipeline", "Targets", "Probes", "Interfaces", "If/1k budget"},
	}

	// Discovery-per-probe at equal budget: every pipeline is charged the
	// full shared budget, whether it spends it or not. A static list that
	// runs out of targets early (lowbyte has only as many /64s as the
	// seed set) leaves the rest of its budget idle — the inability to
	// keep generating credible targets is exactly the deficit the
	// adaptive loop exists to fix, so the yield denominator must not
	// reward it.
	addRow := func(name string, targets, probes, ifaces int64) {
		perK := fmtF(float64(ifaces)*1000/float64(adaptiveStudyBudget), 1)
		t.AddRow(name, itoa(int(targets)), kfmt(probes), itoa(int(ifaces)), perK)
	}

	// Static pipelines: a fixed target list walked once by the serial
	// prober, truncated to the shared budget.
	runStatic := func(name string, targets []netip.Addr) {
		if len(targets) > nTargets {
			targets = targets[:nTargets]
		}
		v := e.adaptiveVantage().Clone(0)
		store := probe.NewStore(true)
		stats, err := core.New(v, core.Config{
			Targets: targets,
			PPS:     e.opt.Rate,
			MaxTTL:  maxTTL,
			Proto:   wire.ProtoICMPv6,
			Key:     key,
		}).Run(store)
		if err != nil {
			panic("beholder: adaptive study campaign failed: " + err.Error())
		}
		addRow(name, int64(len(targets)), stats.ProbesSent, int64(store.NumInterfaces()))
	}
	lb := e.targetSet("dnsdb", 64, target.LowByte1)
	runStatic("static lowbyte (z64)", lb.Targets.Addrs())
	runStatic("static 6gen", sixgen.Generate(seedAddrs, sixgen.DefaultConfig(nTargets)))

	// Adaptive pipeline: same seeds, same vantage conditions, same
	// budget — but the domain grows at epoch boundaries from discovery
	// and alias feedback.
	store, astats := e.runAdaptive(seedAddrs, key, adaptiveStudyBudget, maxTTL)
	addRow("adaptive gen6prob", sumEpochTargets(astats), astats.ProbesSent, int64(store.NumInterfaces()))

	t.Notes = append(t.Notes,
		"Equal budget: every pipeline is charged "+kfmt(adaptiveStudyBudget)+" probes; a static list that exhausts its targets early leaves the remainder idle, which the If/1k-budget denominator does not forgive.",
		"The adaptive row re-weights its prefix trie between epochs from novel-interface rewards and APD prunes, so later epochs concentrate on subtrees that keep answering.")
	return t
}

// adaptiveVantage attaches the study's EU-NET vantage (a fresh handle
// each call; clones carry the per-run state).
func (e *Experiments) adaptiveVantage() *netsim.Vantage {
	return e.in.u.NewVantage(netsim.VantageSpec{
		Name:     vantageSpecs[0].name,
		Kind:     vantageSpecs[0].kind,
		ChainLen: vantageSpecs[0].chain,
	})
}

// runAdaptive drives one gen6prob-fed adaptive campaign over pristine
// vantage clones and returns the merged store and run statistics.
func (e *Experiments) runAdaptive(seedAddrs []netip.Addr, key uint64, budget int64, maxTTL uint8) (*probe.Store, core.AdaptiveStats) {
	pv := e.adaptiveVantage()
	src := gen6prob.New(seedAddrs, gen6prob.Config{Key: key})
	acfg := core.AdaptiveConfig{
		CampaignConfig: core.CampaignConfig{
			Config: core.Config{
				PPS:    e.opt.Rate,
				MaxTTL: maxTTL,
				Proto:  wire.ProtoICMPv6,
				Key:    key,
			},
			Shards:      1,
			RecordPaths: true,
		},
		Source:       src,
		Budget:       budget,
		EpochTargets: 16,
		MaxEpochs:    32,
		DetectAliases: func(ep int, st *probe.Store) []netip.Prefix {
			cands := gen6prob.AliasCandidates(st, 1)
			if len(cands) == 0 {
				return nil
			}
			nv := pv.Clone(0)
			nv.SetPlanCache(0)
			det := alias.NewDetector(nv, alias.DefaultParams())
			rng := rand.New(rand.NewSource(e.opt.Seed ^ int64(ep+1)*0xa11a5))
			return det.Detect(cands, rng).Aliased.Prefixes()
		},
	}
	camp := core.NewAdaptive(acfg, func(_ int, start time.Duration) probe.Conn {
		return pv.Clone(start)
	})
	store, astats, err := camp.Run()
	if err != nil {
		panic("beholder: adaptive study campaign failed: " + err.Error())
	}
	return store, astats
}

// sumEpochTargets totals the targets an adaptive run generated.
func sumEpochTargets(st core.AdaptiveStats) int64 {
	var n int64
	for _, e := range st.Epochs {
		n += int64(e.Targets)
	}
	return n
}
