package beholder

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"beholder/internal/testutil"
)

// TestFacadeCheckpointResume drives the interrupt → checkpoint → resume
// workflow through the public API: a campaign interrupted mid-flight
// and resumed on a replayed Internet must reproduce the uninterrupted
// run byte for byte.
func TestFacadeCheckpointResume(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	run := func(interruptAt time.Duration) (*Result, *Vantage) {
		in := NewSmallInternet(3)
		v := in.NewVantage("ckpt-test")
		targets, err := in.TargetSet("caida", 64, "lowbyte1", 0.2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := v.RunYarrp6(targets, YarrpOptions{
			Rate: 2000, MaxTTL: 12, Key: 1, Fill: true, Shards: 2,
			InterruptAt: interruptAt,
		})
		if interruptAt == 0 && err != nil {
			t.Fatal(err)
		}
		if interruptAt > 0 {
			if !errors.Is(err, ErrInterrupted) {
				t.Fatalf("interrupt run: got %v, want ErrInterrupted", err)
			}
			if len(res.Checkpoint) == 0 {
				t.Fatal("interrupted result carries no checkpoint")
			}
		}
		return res, v
	}

	ref, _ := run(0)
	partial, v := run(400 * time.Millisecond)
	if partial.ProbesSent >= ref.ProbesSent {
		t.Fatalf("interrupted run sent %d probes, full run %d", partial.ProbesSent, ref.ProbesSent)
	}

	var progress bytes.Buffer
	res, err := v.ResumeYarrp6(partial.Checkpoint, YarrpOptions{Progress: &progress})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbesSent != ref.ProbesSent || res.Fills != ref.Fills || res.Replies != ref.Replies {
		t.Fatalf("resumed counters %d/%d/%d differ from uninterrupted %d/%d/%d",
			res.ProbesSent, res.Fills, res.Replies, ref.ProbesSent, ref.Fills, ref.Replies)
	}
	if !res.Store().Equal(ref.Store()) {
		t.Fatal("resumed store differs from uninterrupted store")
	}
	if !res.Graph().Equal(ref.Graph()) {
		t.Fatal("resumed graph differs from uninterrupted graph")
	}
	if len(res.Checkpoint) != 0 {
		t.Fatal("completed resume still carries a checkpoint")
	}
}

// TestFacadeFaultedCampaign exercises the fault plane through the
// public API: a crash rule quarantines the afflicted shard, recovery
// re-probes its range, and with lossless replies the result equals the
// fault-free campaign's.
func TestFacadeFaultedCampaign(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	run := func(fc *FaultConfig) (*Result, *TelemetryRegistry) {
		in := NewSmallInternet(3)
		in.SetFaults(fc)
		v := in.NewVantage("fault-test")
		targets, err := in.TargetSet("caida", 64, "lowbyte1", 0.2)
		if err != nil {
			t.Fatal(err)
		}
		reg := NewTelemetry()
		res, err := v.RunYarrp6(targets, YarrpOptions{
			Rate: 2000, MaxTTL: 12, Key: 1, Fill: true, Shards: 2, Telemetry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, reg
	}

	clean, _ := run(nil)
	faulted, reg := run(&FaultConfig{Seed: 5, Rules: []FaultRule{
		{Vantage: "fault-test", Shard: 1, Kind: FaultCrash, At: 200 * time.Millisecond},
	}})
	if len(faulted.Quarantined) != 1 || faulted.Quarantined[0] != 1 {
		t.Fatalf("quarantined = %v, want [1]", faulted.Quarantined)
	}
	if len(faulted.Incomplete) != 0 {
		t.Fatalf("incomplete ranges: %v", faulted.Incomplete)
	}
	if !faulted.Store().Equal(clean.Store()) {
		t.Fatal("crash-recovered store differs from fault-free store")
	}
	snap := reg.Snapshot()
	if n, ok := snap.Counter("sim_fault_crash_denials_total"); !ok || n == 0 {
		t.Fatal("sim_fault_crash_denials_total not published")
	}
}
