package beholder

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"beholder/internal/testutil"
)

// TestFacadeScheduler drives the multi-tenant supervisor through the
// public API: two tenants' campaigns run concurrently over one
// Internet, each must reproduce the bare RunYarrp6 result byte for
// byte, the NDJSON stream must narrate the run, and a drained scheduler
// must leave nothing behind.
func TestFacadeScheduler(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	bare := func(name string, shards int) *Result {
		in := NewSmallInternet(11)
		v := in.NewVantage(name)
		targets, err := in.TargetSet("caida", 64, "lowbyte1", 0.2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := v.RunYarrp6(targets, YarrpOptions{
			Rate: 2000, MaxTTL: 12, Key: 1, Fill: true, Shards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	in := NewSmallInternet(11)
	targets, err := in.TargetSet("caida", 64, "lowbyte1", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewTelemetry()
	sch, err := in.NewScheduler(SchedulerOptions{
		Tenants: []Tenant{{Name: "alice"}, {Name: "bob", RateBudget: 4000}},
		Workers: 2, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	var stream bytes.Buffer
	ha, err := sch.Submit(in.NewVantage("sched-a"), targets, SubmitOptions{
		Tenant: "alice", Name: "sweep", Rate: 2000, MaxTTL: 12, Key: 1,
		Fill: true, Shards: 2, Stream: &stream,
	})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := sch.Submit(in.NewVantage("sched-b"), targets, SubmitOptions{
		Tenant: "bob", Name: "sweep", Rate: 2000, MaxTTL: 12, Key: 1,
		Fill: true, Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	resA, err := ha.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resB, err := hb.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resA.State != CampaignCompleted || resB.State != CampaignCompleted {
		t.Fatalf("states %v/%v", resA.State, resB.State)
	}

	// Supervisor neutrality through the facade: each tenant's store is
	// byte-identical to the bare single-campaign run from an
	// identically-named vantage on a fresh identically-seeded Internet.
	refA, refB := bare("sched-a", 2), bare("sched-b", 3)
	if !resA.Store.Equal(refA.Store()) {
		t.Fatal("alice's supervised store differs from bare run")
	}
	if !resB.Store.Equal(refB.Store()) {
		t.Fatal("bob's supervised store differs from bare run")
	}
	if !resA.Graph.Equal(refA.Graph()) {
		t.Fatal("alice's supervised graph differs from bare run")
	}

	// The stream narrates admission → start → deltas → completion.
	dec := json.NewDecoder(&stream)
	var evs []CampaignEvent
	for dec.More() {
		var ev CampaignEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
	if len(evs) < 3 || evs[0].Event != "submitted" || evs[len(evs)-1].Event != "completed" {
		t.Fatalf("stream shape: %d events", len(evs))
	}

	if _, err := sch.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := sch.Submit(in.NewVantage("sched-a"), targets, SubmitOptions{Tenant: "alice", Name: "late"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: %v", err)
	}
	if n, ok := reg.Snapshot().Counter("sched_completed_total"); !ok || n != 2 {
		t.Fatalf("sched_completed_total = %d (%v)", n, ok)
	}
}
