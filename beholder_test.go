package beholder

import (
	"net/netip"
	"runtime"
	"strings"
	"testing"

	"beholder/internal/ipv6"

	"beholder/internal/testutil"
)

// smallExperiments returns a fast suite for tests.
func smallExperiments() *Experiments {
	return NewExperiments(ExpOptions{Seed: 7, Scale: 0.2, Small: true, Rate: 2000})
}

func TestFacadeQuickCampaign(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	in := NewSmallInternet(3)
	v := in.NewVantage("test-vantage")
	targets, err := in.TargetSet("caida", 64, "lowbyte1", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) == 0 {
		t.Fatal("no targets")
	}
	res, err := v.RunYarrp6(targets, YarrpOptions{Rate: 2000, MaxTTL: 12, Key: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumInterfaces() == 0 {
		t.Error("no interfaces discovered")
	}
	if res.ProbesSent != int64(len(targets))*12 {
		t.Errorf("probes sent %d", res.ProbesSent)
	}
	// A path exists for at least one target.
	found := false
	for _, tgt := range targets {
		if len(res.Path(tgt)) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no paths recorded")
	}
}

func TestFacadeErrors(t *testing.T) {
	in := NewSmallInternet(3)
	if _, err := in.TargetSet("nope", 64, "lowbyte1", 0.2); err == nil {
		t.Error("unknown seed list accepted")
	}
	if _, err := in.TargetSet("caida", 64, "nope", 0.2); err == nil {
		t.Error("unknown synthesis accepted")
	}
	v := in.NewVantage("x")
	if _, err := v.RunYarrp6([]netip.Addr{}, YarrpOptions{}); err == nil {
		t.Error("empty targets accepted")
	}
}

func TestFacadeBaselinesAndSubnets(t *testing.T) {
	in := NewSmallInternet(4)
	v := in.NewVantageAt("base", "university", 3)
	targets, err := in.TargetSet("caida", 64, "lowbyte1", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) > 150 {
		targets = targets[:150]
	}
	seq := v.RunSequential(targets, SequentialOptions{Rate: 500, MaxTTL: 12, Window: 32})
	if seq.NumInterfaces() == 0 {
		t.Error("sequential found nothing")
	}
	in.Reset()
	v2 := in.NewVantageAt("base", "university", 3)
	dt := v2.RunDoubletree(targets, DoubletreeOptions{Rate: 500, StartTTL: 5, MaxTTL: 12, Window: 32})
	if dt.NumInterfaces() == 0 {
		t.Error("doubletree found nothing")
	}
	in.Reset()
	v3 := in.NewVantageAt("base", "university", 3)
	res, err := v3.RunYarrp6(targets, YarrpOptions{Rate: 2000, MaxTTL: 16, Fill: true})
	if err != nil {
		t.Fatal(err)
	}
	subnets, ia := v3.DiscoverSubnets(res)
	if len(subnets) == 0 && ia == 0 {
		t.Log("no subnets inferred at this scale (acceptable for tiny target lists)")
	}
}

func TestExperimentSeedTables(t *testing.T) {
	e := smallExperiments()
	t1 := e.Table1()
	if len(t1.Rows) < 8 {
		t.Errorf("Table1 rows = %d", len(t1.Rows))
	}
	if !strings.Contains(t1.Render(), "caida") {
		t.Error("Table1 missing caida row")
	}
	t2 := e.Table2()
	if len(t2.Rows) < 6 {
		t.Errorf("Table2 rows = %d", len(t2.Rows))
	}
	t5 := e.Table5()
	// 7 independents + tum + combined per zn, plus total.
	if len(t5.Rows) != 2*9+1 {
		t.Errorf("Table5 rows = %d want 19", len(t5.Rows))
	}
	f2 := e.Figure2()
	if len(f2.Series) != 14 {
		t.Errorf("Figure2 series = %d", len(f2.Series))
	}
	f3a, f3b := e.Figure3()
	if len(f3a.Series) != 8 || len(f3b.Series) != 8 {
		t.Errorf("Figure3 series = %d/%d", len(f3a.Series), len(f3b.Series))
	}
	// Combination can only shift DPL CDFs left-or-equal at each point
	// (higher DPLs → lower cumulative fraction at small lengths).
	for i := range f3a.Series {
		for j := range f3a.Series[i].Y {
			if f3b.Series[i].Y[j] > f3a.Series[i].Y[j]+1e-9 {
				t.Fatalf("combined CDF above standalone for %s at x=%v",
					f3a.Series[i].Name, f3a.Series[i].X[j])
			}
		}
	}
}

func TestExperimentTuningTables(t *testing.T) {
	e := smallExperiments()
	t3 := e.Table3()
	if len(t3.Rows) != 4 {
		t.Fatalf("Table3 rows = %d", len(t3.Rows))
	}
	t4 := e.Table4()
	if len(t4.Rows) != 6 {
		t.Fatalf("Table4 rows = %d", len(t4.Rows))
	}
	t6 := e.Table6()
	if len(t6.Rows) != 4 {
		t.Fatalf("Table6 rows = %d", len(t6.Rows))
	}
}

func TestExperimentCampaigns(t *testing.T) {
	e := smallExperiments()
	t7 := e.Table7()
	// 4 aggregate rows + 16 EU-NET set rows.
	if len(t7.Rows) != 4+16 {
		t.Fatalf("Table7 rows = %d", len(t7.Rows))
	}
	f7 := e.Figure7()
	if len(f7.Series) != 9 {
		t.Errorf("Figure7 series = %d", len(f7.Series))
	}
	// Discovery curves are monotone nondecreasing.
	for _, s := range f7.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Fatalf("discovery curve %s decreased", s.Name)
			}
		}
	}
	f8a, f8b := e.Figure8()
	if len(f8a.Series) != 8 || len(f8b.Series) != 9 {
		t.Errorf("Figure8 series = %d/%d", len(f8a.Series), len(f8b.Series))
	}
}

// TestFacadeShardedCampaignMatches: the facade-level sharded run must
// reproduce the single-instance run exactly — interfaces, paths,
// counters — while reporting the per-shard breakdown.
func TestFacadeShardedCampaignMatches(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	run := func(shards int) *Result {
		in := NewSmallInternet(3)
		v := in.NewVantage("shard-test")
		targets, err := in.TargetSet("caida", 64, "lowbyte1", 0.2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := v.RunYarrp6(targets, YarrpOptions{Rate: 2000, MaxTTL: 12, Key: 1, Fill: true, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	single := run(1)
	sharded := run(4)
	if sharded.ProbesSent != single.ProbesSent || sharded.Fills != single.Fills ||
		sharded.Replies != single.Replies {
		t.Fatalf("sharded counters %d/%d/%d differ from single %d/%d/%d",
			sharded.ProbesSent, sharded.Fills, sharded.Replies,
			single.ProbesSent, single.Fills, single.Replies)
	}
	if !sharded.Store().Equal(single.Store()) {
		t.Fatal("sharded store differs from single-instance store")
	}
	if len(sharded.ShardStats) != 4 || len(single.ShardStats) != 0 {
		t.Fatalf("shard stats lengths: %d and %d", len(sharded.ShardStats), len(single.ShardStats))
	}
	for _, a := range single.Interfaces() {
		if !sharded.Discovered(a) {
			t.Fatalf("interface %s missing from sharded result", a)
		}
	}
}

// TestExperimentWorkersEquality: the campaign matrix rendered with
// concurrent workers must be byte-identical to the serial rendering —
// cells are isolated, so parallelism is invisible in the artifacts.
func TestExperimentWorkersEquality(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	render := func(workers int) (string, string) {
		e := NewExperiments(ExpOptions{Seed: 7, Scale: 0.1, Small: true, Rate: 2000, Workers: workers})
		return e.Table7().Render(), e.Figure6().Render()
	}
	t1, f1 := render(1)
	t4, f4 := render(4)
	if t1 != t4 {
		t.Error("Table 7 differs between 1 and 4 workers")
	}
	if f1 != f4 {
		t.Error("Figure 6 differs between 1 and 4 workers")
	}
}

func TestFacadeAliasWorkflow(t *testing.T) {
	in := NewSmallInternet(6)
	truth := in.AliasedGroundTruth(10)
	if len(truth) == 0 {
		t.Fatal("no ground-truth aliased /64s")
	}

	// An alias-polluted target list: a z64 set plus several members per
	// ground-truth aliased LAN, the way known-address hitlists look.
	targets, err := in.TargetSet("fdns_any", 64, "fixediid", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	polluted := len(targets)
	for _, p := range truth {
		for iid := uint64(1); iid <= 3; iid++ {
			targets = append(targets, ipv6.WithIID(p.Addr(), iid))
		}
	}

	v := in.NewVantage("alias-workflow")
	cands := AliasCandidates(targets)
	aliases := v.DetectAliases(cands, AliasOptions{})
	if aliases.Len() == 0 {
		t.Fatal("no aliases detected")
	}
	if aliases.ProbesSent() == 0 || aliases.Tested() != len(cands) {
		t.Errorf("probes=%d tested=%d of %d", aliases.ProbesSent(), aliases.Tested(), len(cands))
	}
	// Every ground-truth LAN we injected members into must be caught.
	caught := 0
	for _, p := range truth {
		if aliases.Contains(p.Addr()) {
			caught++
		}
	}
	if caught < len(truth)*9/10 {
		t.Errorf("caught %d/%d injected aliased LANs", caught, len(truth))
	}

	kept, stats := DealiasTargets(targets, aliases)
	if len(kept) >= len(targets) {
		t.Errorf("dealias did not shrink the set: %d → %d", len(targets), len(kept))
	}
	if stats.Dropped < 3*caught {
		t.Errorf("dropped %d members, expected at least %d", stats.Dropped, 3*caught)
	}
	for _, a := range kept {
		if aliases.Contains(a) {
			t.Fatalf("kept target %s inside an aliased prefix", a)
		}
	}
	t.Logf("targets %d (+%d injected) → %d kept; %d aliased prefixes, %d probes",
		polluted, len(targets)-polluted, len(kept), aliases.Len(), aliases.ProbesSent())
}

func TestExperimentAliasStudy(t *testing.T) {
	e := smallExperiments()
	tbl := e.AliasStudy()
	if len(tbl.Rows) != 2 {
		t.Fatalf("AliasStudy rows = %d, want 2", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != 9 {
			t.Fatalf("AliasStudy row width = %d", len(row))
		}
	}
}
