package beholder

import (
	"strings"
	"testing"
)

func TestExperimentFaultStudy(t *testing.T) {
	out := smallExperiments().FaultStudy().Render()
	for _, want := range []string{"clean", "crash shard 1", "equal", "transient sends"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FaultStudy output missing %q:\n%s", want, out)
		}
	}
}
