# Developer entry points. CI runs the same steps (see .github/workflows/ci.yml).

GO ?= go

.PHONY: test race bench bench-check progress-sample fmt vet fuzz-smoke cover chaos soak crashsoak

# chaos runs the fault-injection matrix, checkpoint/resume equivalence,
# and cancellation tests under the race detector.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Checkpoint|Cancel' ./internal/core

# soak runs the multi-tenant scheduler chaos harness under the race
# detector: concurrent tenant campaigns under injected crash/stall/
# transient faults, supervisor-neutrality byte-equality, watchdog
# failover, and the drain -> restart -> drain continuation chain. The
# wall cap keeps a wedged supervisor from hanging CI.
soak:
	$(GO) test -race -count=1 -timeout 5m -run 'Soak|ChaosSoak|Neutrality|Watchdog|Admission|Breaker|PeriodicCheckpoint' ./internal/sched

# crashsoak is the process-level kill-9 harness plus the durable-store
# unit suite: real beholderd subprocesses SIGKILLed at randomized
# instants (mid-run, mid-periodic-checkpoint, mid-drain), restarted on
# the same state dir, and required to finish every campaign byte-equal
# to a solo fault-free run — with planted-corruption quarantine,
# signal-drain, and zero-quarantine-on-clean-run checks riding along.
# The wall cap keeps a wedged daemon from hanging CI.
crashsoak:
	$(GO) test -race -count=1 -timeout 8m ./internal/store ./cmd/beholderd

test:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

# bench writes BENCH_PR8.json: probes/s and allocs/probe for the
# hot-path benchmarks, the shard-scaling sweep (shards x batch sizes,
# engine time only) with core-normalized parallel efficiency, and the
# recorded PR 3 baseline with the speedup over it.
bench:
	$(GO) run ./cmd/bench -benchtime 1.5s -out BENCH_PR8.json

# bench-check is the CI gate: short-form run that fails when any hot
# benchmark's steady-state allocs/probe exceeds the bound, when
# 4-shard parallel efficiency falls below 0.6, when the fully
# instrumented campaign (telemetry registry + progress stream) drops
# below 0.95x the bare campaign's throughput, when a supervised
# single-tenant campaign drops below 0.95x the bare campaign, when
# periodic checkpointing costs more than 5% of drain-only supervised
# throughput (-min-ckpt-ratio), or when the adaptive loop's discovery
# per probe falls below 1.1x an equal-budget static target list.
bench-check:
	$(GO) run ./cmd/bench -benchtime 150ms -check

# progress-sample writes a small campaign's NDJSON progress stream —
# the live-observability artifact CI uploads for every build.
progress-sample:
	$(GO) run ./cmd/yarrp6 -small -seeds cdn-k32 -scale 0.2 -rate 8000 -shards 2 -progress progress-sample.ndjson
	head -3 progress-sample.ndjson

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# fuzz-smoke gives each native fuzz target a short budget beyond its
# checked-in seed corpus (testdata/fuzz); bump FUZZTIME for a real hunt.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run xxx -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run xxx -fuzz '^FuzzBuildDecodeRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run xxx -fuzz '^FuzzParseReply$$' -fuzztime $(FUZZTIME) ./internal/probe
	$(GO) test -run xxx -fuzz '^FuzzProbeCacheEquivalence$$' -fuzztime $(FUZZTIME) ./internal/probe
	$(GO) test -run xxx -fuzz '^FuzzCheckpointDecode$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run xxx -fuzz '^FuzzStoreRecover$$' -fuzztime $(FUZZTIME) ./internal/store

# cover writes the aggregate coverage profile and prints the total; CI
# fails if the total drops below its recorded baseline.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -1
