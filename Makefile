# Developer entry points. CI runs the same steps (see .github/workflows/ci.yml).

GO ?= go

.PHONY: test race bench bench-check fmt vet

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

# bench writes BENCH_PR3.json: probes/s and allocs/probe for the three
# hot-path benchmarks, plus the recorded pre-fast-path baseline and the
# speedup over it.
bench:
	$(GO) run ./cmd/bench -benchtime 1.5s -out BENCH_PR3.json

# bench-check is the CI gate: short-form run that fails when any hot
# benchmark's steady-state allocs/probe exceeds the bound.
bench-check:
	$(GO) run ./cmd/bench -benchtime 150ms -check

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
