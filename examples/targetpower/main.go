// Targetpower reproduces the paper's Figure 7 finding at demo scale:
// target-list choice dominates discovery. BGP-derived targets (caida)
// saturate quickly — breadth without depth — while client-derived
// aggregates (cdn-k32) and collections (tum) keep yielding new router
// interfaces, and random targets decay.
package main

import (
	"fmt"
	"log"

	"beholder"
)

func main() {
	in := beholder.NewSmallInternet(21)

	fmt.Println("discovery power by target set (probes → unique interfaces):")
	for _, name := range []string{"caida", "cdn-k32", "tum", "random"} {
		targets, err := in.TargetSet(name, 64, "fixediid", 0.5)
		if err != nil {
			log.Fatal(err)
		}
		in.Reset()
		v := in.NewVantageAt("power", "hosting", 3)
		res, err := v.RunYarrp6(targets, beholder.YarrpOptions{Rate: 4000, MaxTTL: 16, Key: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-8s (%d targets)\n", name, len(targets))
		// Print a decimated discovery curve.
		step := len(res.Curve)/6 + 1
		for i := 0; i < len(res.Curve); i += step {
			p := res.Curve[i]
			fmt.Printf("  %8d probes  %6d interfaces\n", p.Probes, p.Interfaces)
		}
		last := res.Curve[len(res.Curve)-1]
		fmt.Printf("  %8d probes  %6d interfaces (final; yield %.2f%%)\n",
			last.Probes, last.Interfaces, 100*float64(last.Interfaces)/float64(last.Probes+1))
	}
	fmt.Println("\nexpected: caida flattens early; cdn-k32/tum keep climbing; random decays after its first sweep.")
}
