// Quickstart: build a simulated IPv6 internetwork, generate probe
// targets from BGP-derived seeds, run a Yarrp6 campaign, and print a
// few discovered paths.
package main

import (
	"fmt"
	"log"

	"beholder"
)

func main() {
	// A small deterministic internetwork (~120 ASes) and a university
	// vantage point.
	in := beholder.NewSmallInternet(42)
	vantage := in.NewVantage("quickstart")
	fmt.Printf("internet: %d ASes, %d BGP prefixes; vantage at %s\n",
		in.NumASes(), in.NumPrefixes(), vantage.Addr())

	// Target generation, the paper's Section 3: CAIDA-style BGP seeds,
	// z64 transformation, ::1 synthesis.
	targets, err := in.TargetSet("caida", 64, "lowbyte1", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("targets:  %d (caida z64 lowbyte1)\n", len(targets))

	// A randomized stateless campaign at 1kpps with fill mode.
	res, err := vantage.RunYarrp6(targets, beholder.YarrpOptions{
		Rate:   1000,
		MaxTTL: 16,
		Fill:   true,
		Key:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: %d probes (%d fills) in %s virtual time\n",
		res.ProbesSent, res.Fills, res.Elapsed)
	fmt.Printf("found:    %d unique router interface addresses\n\n", res.NumInterfaces())

	// Show the first few traced paths.
	shown := 0
	for _, t := range targets {
		path := res.Path(t)
		if len(path) < 4 {
			continue
		}
		fmt.Printf("path to %s:\n", t)
		for _, hop := range path {
			fmt.Printf("  %2d  %s\n", hop.TTL, hop.Addr)
		}
		if res.Reached(t) {
			fmt.Println("  destination responded")
		}
		fmt.Println()
		if shown++; shown == 3 {
			break
		}
	}
}
