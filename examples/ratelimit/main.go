// Ratelimit reproduces the heart of the paper's Figure 5 at demo scale:
// the same probe budget at the same aggregate rate elicits dramatically
// different per-hop responsiveness depending on probe order, because
// routers rate-limit ICMPv6 origination (RFC 4443) and sequential
// probing concentrates same-TTL probes into bursts.
package main

import (
	"fmt"
	"log"
	"net/netip"

	"beholder"
)

func main() {
	in := beholder.NewSmallInternet(7)
	targets, err := in.TargetSet("caida", 64, "lowbyte1", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	const maxTTL = 12

	for _, rate := range []float64{20, 1000, 2000} {
		// Sequential (scamper-like): windowed traces advance TTLs in
		// near-lockstep.
		in.Reset()
		v := in.NewVantageAt("fig5", "university", 4)
		seq := v.RunSequential(targets, beholder.SequentialOptions{
			Rate: rate, MaxTTL: maxTTL, Window: len(targets),
		})

		// Yarrp6: the same targets and rate, randomized (target, TTL)
		// order.
		in.Reset()
		v = in.NewVantageAt("fig5", "university", 4)
		yar, err := v.RunYarrp6(targets, beholder.YarrpOptions{Rate: rate, MaxTTL: maxTTL, Key: uint64(rate)})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("rate %5.0f pps:\n", rate)
		fmt.Printf("  %-12s %s\n", "hop", "1     2     3     4     5     6")
		printResp := func(name string, r *beholder.Result) {
			fmt.Printf("  %-12s", name)
			resp := perHop(r, targets, maxTTL)
			for h := 0; h < 6; h++ {
				fmt.Printf(" %4.0f%%", resp[h]*100)
			}
			fmt.Println()
		}
		printResp("sequential", seq)
		printResp("yarrp(rand)", yar)
		fmt.Println()
	}
	fmt.Println("expected: parity at 20pps; at 1-2kpps sequential's near hops collapse while randomized holds.")
}

// perHop computes the fraction of traces with a response at each hop.
func perHop(r *beholder.Result, targets []netip.Addr, maxTTL int) []float64 {
	counts := make([]int, maxTTL+1)
	for _, t := range targets {
		for _, h := range r.Path(t) {
			if int(h.TTL) <= maxTTL {
				counts[h.TTL]++
			}
		}
	}
	out := make([]float64, maxTTL)
	for i := 1; i <= maxTTL; i++ {
		out[i-1] = float64(counts[i]) / float64(len(targets))
	}
	return out
}
