// Subnets demonstrates Section 6 of the paper: inferring subnet
// boundaries from traced paths via path divergence and the /64
// "identity association hack", then scoring the inferences against the
// simulator's exact ground truth — the validation the paper could only
// approximate with ISP interior prefix lists.
package main

import (
	"fmt"
	"log"
	"sort"

	"beholder"
)

func main() {
	in := beholder.NewSmallInternet(11)
	vantage := in.NewVantageAt("subnet-study", "hosting", 3)

	// Deep targets: fiebig-style rDNS seeds keep multiple targets per
	// network, giving neighbor pairs the high DPLs subnet discovery
	// feeds on.
	targets, err := in.TargetSet("fiebig", 64, "fixediid", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probing %d fiebig-z64 targets from %s\n", len(targets), vantage.Addr())

	res, err := vantage.RunYarrp6(targets, beholder.YarrpOptions{
		Rate: 2000, MaxTTL: 20, Fill: true, Key: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d interfaces from %d probes\n\n", res.NumInterfaces(), res.ProbesSent)

	subnets, iaPins := vantage.DiscoverSubnets(res)
	fmt.Printf("inferred %d candidate subnets (%d traces pinned exact /64s via the IA hack)\n",
		len(subnets), iaPins)

	// Distribution of inferred minimum prefix lengths.
	hist := map[int]int{}
	for _, s := range subnets {
		hist[s.MinLen]++
	}
	lens := make([]int, 0, len(hist))
	for l := range hist {
		lens = append(lens, l)
	}
	sort.Ints(lens)
	for _, l := range lens {
		fmt.Printf("  >= /%-3d %d candidates\n", l, hist[l])
	}

	// Score against the simulator's true subnet plan.
	truth := in.GroundTruthSubnets(64, 200)
	exact, moreSpecific := 0, 0
	truthSet := map[string]bool{}
	for _, t := range truth {
		truthSet[t.String()] = true
	}
	for _, s := range subnets {
		if truthSet[s.Prefix.String()] {
			exact++
			continue
		}
		for _, t := range truth {
			if t.Contains(s.Prefix.Addr()) && s.Prefix.Bits() > t.Bits() {
				moreSpecific++
				break
			}
		}
	}
	fmt.Printf("\nagainst %d ground-truth subnets: %d exact, %d more-specific\n",
		len(truth), exact, moreSpecific)
	fmt.Println("(more-specifics are expected: candidates bound the true length from below)")
}
