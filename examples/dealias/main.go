// Dealias demonstrates the aliased-prefix problem and its remedy: in
// CDN-fronted hosting networks a load balancer answers for every
// address in a /64, so a hitlist-derived target set keeps rediscovering
// the same middlebox. The 6Prob-style detector probes random IIDs
// beneath each candidate /64 — replies to addresses that cannot be
// assigned expose the alias — and the dealias pass drops the polluted
// targets. Ground truth from the simulator scores the detection.
package main

import (
	"fmt"
	"log"

	"beholder"
)

func main() {
	in := beholder.NewSmallInternet(21)

	// A known-address target set from forward-DNS seeds: hosting
	// networks, many named hosts per /64 — the alias-polluted case.
	targets, err := in.TargetSet("fdns_any", 0, "known", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	cands := beholder.AliasCandidates(targets)
	fmt.Printf("targets:    %d known fdns addresses across %d candidate /64s\n",
		len(targets), len(cands))

	// Detect aliased prefixes with 8 random-IID probes per candidate.
	v := in.NewVantageAt("dealias-demo", "university", 3)
	aliases := v.DetectAliases(cands, beholder.AliasOptions{})
	fmt.Printf("detection:  %d probes over %d candidates → %d aliased /64s\n",
		aliases.ProbesSent(), aliases.Tested(), aliases.Len())

	// Score against the simulator's exact aliasing oracle. (The full
	// ground-truth list is enormous — every CDN /32 holds millions of
	// aliased /64s — so membership is queried, not enumerated.)
	u := in.Universe()
	tp := 0
	for _, p := range aliases.Prefixes() {
		if u.AddrAliased(p.Addr()) {
			tp++
		}
	}
	inTruth := 0
	for _, p := range cands {
		if u.AddrAliased(p.Addr()) {
			inTruth++
		}
	}
	fmt.Printf("validation: %d/%d detected prefixes are truly aliased; %d/%d aliased candidates found\n",
		tp, aliases.Len(), tp, inTruth)

	// Drop the polluted targets.
	kept, stats := beholder.DealiasTargets(targets, aliases)
	fmt.Printf("dealias:    %d targets dropped (%d aliased prefixes intersected) → %d kept\n",
		stats.Dropped, stats.AliasedPrefixes, len(kept))

	// The recovered budget, in campaign terms: every dropped target
	// would have cost a full TTL sweep into the same middlebox.
	fmt.Printf("recovered:  ~%d probes of campaign budget at maxTTL 16\n", stats.Dropped*16)
}
