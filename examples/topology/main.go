// Topology: run graph-observed Yarrp6 campaigns from two vantage
// points, union them into one interface-level topology graph, collapse
// aliased middlebox prefixes into router nodes, and emit the union as
// Graphviz DOT on stdout:
//
//	go run ./examples/topology > topology.dot && dot -Tsvg topology.dot -o topology.svg
//
// Progress and summary metrics go to stderr so the DOT stream stays
// clean.
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"

	"beholder"
)

func main() {
	in := beholder.NewSmallInternet(42)
	targets, err := in.TargetSet("fdns_any", 64, "fixediid", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "topology: %d targets across %d ASes\n", len(targets), in.NumASes())

	// One graph-observed campaign per vantage: the graph is built
	// streaming, while probes fly, not from the stored traces.
	var graphs []*beholder.Result
	for _, name := range []string{"vantage-west", "vantage-east"} {
		v := in.NewVantage(name)
		res, err := v.RunYarrp6(targets, beholder.YarrpOptions{
			Rate: 4000, MaxTTL: 16, Fill: true, Key: 7, Graph: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		g := res.Graph()
		fmt.Fprintf(os.Stderr, "topology: %-13s %5d probes -> %4d nodes, %4d edges\n",
			name, res.ProbesSent, g.NumNodes(), g.NumEdges())
		graphs = append(graphs, res)
	}

	// Cross-vantage union: the second vantage's marginal topology is
	// the paper's argument for probing from more than one place.
	union := beholder.UnionGraphs(graphs[0].Graph(), graphs[1].Graph())
	fmt.Fprintf(os.Stderr, "topology: union         %4d nodes, %4d edges (vantages: %v)\n",
		union.NumNodes(), union.NumEdges(), union.Vantages())

	// Router collapse: detect aliased /64s (middleboxes answering for
	// whole prefixes) and fold their interfaces into single routers.
	aliases := in.NewVantage("apd").DetectAliases(beholder.AliasCandidates(targets), beholder.AliasOptions{Rate: 4000})
	routers := beholder.CollapseGraph(union, aliases)
	fmt.Fprintf(os.Stderr, "topology: collapsed     %4d routers (%d interfaces folded, %d intra-router links dropped)\n",
		routers.NumRouters(), routers.Folded, routers.IntraRouter)

	w := bufio.NewWriter(os.Stdout)
	if err := union.WriteDOT(w, in.Universe().Table()); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
