// gencorpus writes the checked-in fuzz seed corpora for internal/wire,
// internal/probe, and internal/core in Go's corpus file format.
package main

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"beholder/internal/core"
	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/wire"
)

func write(dir, name string, lines ...string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	out := "go test fuzz v1\n"
	for _, l := range lines {
		out += l + "\n"
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(out), 0o644); err != nil {
		panic(err)
	}
}

func bs(b []byte) string { return "[]byte(" + strconv.Quote(string(b)) + ")" }
func by(v uint8) string  { return "byte(" + strconv.QuoteRuneToASCII(rune(v)) + ")" }

type frozenConn struct {
	addr netip.Addr
	now  time.Duration
}

func (c *frozenConn) LocalAddr() netip.Addr   { return c.addr }
func (c *frozenConn) Send([]byte) error       { return nil }
func (c *frozenConn) Recv([]byte) (int, bool) { return 0, false }
func (c *frozenConn) Now() time.Duration      { return c.now }
func (c *frozenConn) Sleep(d time.Duration)   { c.now += d }

func main() {
	src := netip.MustParseAddr("2001:db8::1")
	dst := netip.MustParseAddr("2001:db8::2")
	var buf [256]byte

	// wire: FuzzDecode — one well-formed packet per transport plus a
	// truncation.
	wd := "internal/wire/testdata/fuzz/FuzzDecode"
	names := map[uint8]string{wire.ProtoICMPv6: "icmp6", wire.ProtoUDP: "udp", wire.ProtoTCP: "tcp"}
	for proto, name := range names {
		hdr := wire.IPv6Header{HopLimit: 8, Src: src, Dst: dst}
		n := wire.BuildPacket(buf[:], &hdr, proto,
			&wire.UDPHeader{SrcPort: 4242, DstPort: 80},
			&wire.TCPHeader{SrcPort: 4242, DstPort: 80, Flags: wire.TCPSyn},
			&wire.ICMPv6Header{Type: wire.ICMPv6EchoRequest, ID: 4242, Seq: 80},
			[]byte("yarrp6-corpus"))
		write(wd, "seed-"+name, bs(buf[:n]))
		write(wd, "seed-"+name+"-truncated", bs(buf[:n/2]))
	}

	// wire: FuzzBuildDecodeRoundTrip — (protoSel, hopLimit, addrSeed,
	// payload).
	wr := "internal/wire/testdata/fuzz/FuzzBuildDecodeRoundTrip"
	write(wr, "seed-icmp6", by(0), by(8), bs([]byte{0x20, 0x01, 0x0d, 0xb8}), bs([]byte("payload")))
	write(wr, "seed-udp", by(1), by(1), bs([]byte{0xfe, 0x80, 9, 9}), bs(nil))
	write(wr, "seed-tcp", by(2), by(64), bs([]byte{0x26, 0x07}), bs([]byte{1, 2, 3, 4}))

	// probe: FuzzParseReply — a quoted Time Exceeded for a real probe,
	// a truncated quotation, and the bare probe.
	conn := &frozenConn{addr: netip.MustParseAddr("2001:db8:100::1")}
	codec := probe.NewCodec(conn, wire.ProtoICMPv6, 7)
	target := netip.MustParseAddr("2001:db8:200::2")
	pn := codec.BuildProbe(buf[:], target, 9)
	var errBuf [wire.MinMTU]byte
	router := netip.MustParseAddr("2001:db8:300::3")
	en := wire.BuildICMPv6Error(errBuf[:], wire.ICMPv6TimeExceeded, 0, router, conn.addr, buf[:pn], 60)
	pd := "internal/probe/testdata/fuzz/FuzzParseReply"
	write(pd, "seed-time-exceeded", bs(errBuf[:en]))
	write(pd, "seed-truncated-quote", bs(errBuf[:en-probe.PayloadLen]))
	write(pd, "seed-bare-probe", bs(buf[:pn]))

	// probe: FuzzProbeCacheEquivalence — (targetSeed, ttl, protoSel,
	// sleepMs).
	pe := "internal/probe/testdata/fuzz/FuzzProbeCacheEquivalence"
	write(pe, "seed-icmp6", bs([]byte{0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 1}), by(1), by(0), by(0))
	write(pe, "seed-udp", bs([]byte{0x20, 0x01, 0xff, 0xff}), by(16), by(1), by(200))
	write(pe, "seed-tcp", bs([]byte{0x3f, 0xfe}), by(255), by(2), by(63))

	// core: FuzzCheckpointDecode — a real interrupted-campaign artifact,
	// a truncation, and a CRC flip.
	art := checkpointArtifact()
	cd := "internal/core/testdata/fuzz/FuzzCheckpointDecode"
	write(cd, "seed-valid", bs(art))
	write(cd, "seed-truncated", bs(art[:len(art)*2/3]))
	flipped := append([]byte(nil), art...)
	flipped[len(flipped)/2] ^= 0x04
	write(cd, "seed-crc-flip", bs(flipped))

	fmt.Println("corpus written")
}

// checkpointArtifact interrupts a small deterministic netsim campaign
// and serializes its checkpoint.
func checkpointArtifact() []byte {
	cfg := netsim.TestConfig(77)
	cfg.AggressivePercent = 0
	u := netsim.NewUniverse(cfg)
	v := u.NewVantage(netsim.VantageSpec{Name: "US-EDU-1", Kind: netsim.KindUniversity, ChainLen: 4})

	rng := rand.New(rand.NewSource(77))
	var targets []netip.Addr
	kinds := []netsim.ASKind{netsim.KindHosting, netsim.KindEyeballISP, netsim.KindEnterprise}
	for len(targets) < 13 {
		as := u.RandomAS(rng, kinds[len(targets)%len(kinds)])
		lan, ok := u.RandomLAN(rng, as)
		if !ok {
			continue
		}
		targets = append(targets, u.GatewayAddr(lan, as))
	}

	camp := core.NewCampaign(core.CampaignConfig{
		Config:      core.Config{Targets: targets, PPS: 500, MaxTTL: 12, Key: 11, Fill: true},
		Shards:      2,
		RecordPaths: true,
		Progress:    &core.ProgressConfig{},
		InterruptAt: 120 * time.Millisecond,
	}, func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	if _, _, err := camp.Run(); !errors.Is(err, core.ErrInterrupted) {
		panic(fmt.Sprintf("gencorpus checkpoint campaign: %v", err))
	}
	art, err := camp.Checkpoint()
	if err != nil {
		panic(err)
	}
	return art
}
