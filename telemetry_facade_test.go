package beholder

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"beholder/internal/testutil"
)

// telemetryTargets builds a small deterministic target set for the
// facade telemetry tests.
func telemetryTargets(in *Internet, t *testing.T) []netip.Addr {
	t.Helper()
	targets, err := in.TargetSet("cdn-k32", 64, "lowbyte1", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) == 0 {
		t.Fatal("empty target set")
	}
	return targets
}

// runProgress executes one campaign under the golden configuration and
// returns the NDJSON progress stream it produced. The rate sits below
// the simulated routers' ICMPv6 rate-limit saturation point: above it,
// shard counts legitimately differ by a few extra replies near shard
// window starts (token buckets are epoch-scoped per shard), which would
// break the byte-identity this test asserts.
func runProgress(t *testing.T, shards, batch int) []byte {
	t.Helper()
	in := NewSmallInternet(2018)
	v := in.NewVantage("PROG-1")
	targets := telemetryTargets(in, t)
	if len(targets) > 61 {
		targets = targets[:61]
	}
	var buf bytes.Buffer
	_, err := v.RunYarrp6(targets, YarrpOptions{
		Rate: 500, MaxTTL: 12, Key: 0x6b657921,
		Shards: shards, Batch: batch, Progress: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestProgressGolden pins the NDJSON progress stream schema and
// content against a golden master, and proves the stream is
// byte-identical across shard counts and batch sizes — the same
// determinism contract the store and curve already carry.
func TestProgressGolden(t *testing.T) {
	ref := runProgress(t, 1, 0)
	const golden = "testdata/progress.golden"
	if *update {
		if err := os.WriteFile(golden, ref, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(ref, want) {
		t.Fatalf("progress stream deviates from %s\ngot:\n%s\nwant:\n%s", golden, ref, want)
	}
	for _, cfg := range []struct{ shards, batch int }{{2, 0}, {4, 7}, {1, 1}} {
		got := runProgress(t, cfg.shards, cfg.batch)
		if !bytes.Equal(got, ref) {
			t.Fatalf("progress stream differs at shards=%d batch=%d\ngot:\n%s\nwant:\n%s",
				cfg.shards, cfg.batch, got, ref)
		}
	}
}

// TestRunYarrp6Telemetry checks that a telemetry-enabled campaign fills
// the registry consistently with the campaign's own counters.
func TestRunYarrp6Telemetry(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	in := NewSmallInternet(2018)
	v := in.NewVantage("TEL-1")
	reg := NewTelemetry()
	res, err := v.RunYarrp6(telemetryTargets(in, t), YarrpOptions{
		Rate: 8000, MaxTTL: 16, Shards: 2, Graph: true, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Telemetry
	counter := func(name string) int64 {
		t.Helper()
		n, ok := snap.Counter(name)
		if !ok {
			t.Fatalf("counter %s missing from snapshot", name)
		}
		return n
	}
	gauge := func(name string) int64 {
		t.Helper()
		n, ok := snap.Gauge(name)
		if !ok {
			t.Fatalf("gauge %s missing from snapshot", name)
		}
		return n
	}
	if got := counter("yarrp_probes_sent_total"); got != res.ProbesSent {
		t.Errorf("yarrp_probes_sent_total = %d, want %d", got, res.ProbesSent)
	}
	if got := counter("yarrp_replies_total"); got != res.Replies {
		t.Errorf("yarrp_replies_total = %d, want %d", got, res.Replies)
	}
	if got := counter("plan_cache_hits_total"); got != res.PlanHits {
		t.Errorf("plan_cache_hits_total = %d, want %d", got, res.PlanHits)
	}
	if counter("sim_packets_routed_total") == 0 {
		t.Error("sim_packets_routed_total is zero after a campaign")
	}
	if got := gauge("store_unique_interfaces"); got != int64(res.NumInterfaces()) {
		t.Errorf("store_unique_interfaces = %d, want %d", got, res.NumInterfaces())
	}
	if got := gauge("graph_nodes"); got != int64(res.Graph().NumNodes()) {
		t.Errorf("graph_nodes = %d, want %d", got, res.Graph().NumNodes())
	}
	if _, ok := snap.Histogram("yarrp_rtt_usec"); !ok {
		t.Error("yarrp_rtt_usec histogram missing")
	}
	if len(res.Progress) == 0 {
		t.Fatal("telemetry-enabled run returned no progress series")
	}
	last := res.Progress[len(res.Progress)-1]
	if last.Probes != res.ProbesSent {
		t.Errorf("final progress point has %d probes, want %d", last.Probes, res.ProbesSent)
	}
	if last.At != res.Elapsed {
		t.Errorf("final progress point at %s, want %s", last.At, res.Elapsed)
	}
}

// TestTelemetryEquivalence proves that switching telemetry and progress
// on does not perturb the campaign: same store contents, same counters.
func TestTelemetryEquivalence(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	run := func(instrument bool) (*Result, string) {
		in := NewSmallInternet(2018)
		v := in.NewVantage("EQ-1")
		opt := YarrpOptions{Rate: 8000, MaxTTL: 16, Shards: 2}
		if instrument {
			opt.Telemetry = NewTelemetry()
			opt.Progress = io.Discard
		}
		res, err := v.RunYarrp6(telemetryTargets(in, t), opt)
		if err != nil {
			t.Fatal(err)
		}
		ifaces := res.Interfaces()
		// Store insertion order may differ (progress sampling shifts
		// drain boundaries); the discovered set must not.
		sort.Slice(ifaces, func(i, j int) bool { return ifaces[i].Less(ifaces[j]) })
		var sb strings.Builder
		for _, a := range ifaces {
			fmt.Fprintln(&sb, a)
		}
		return res, sb.String()
	}
	plain, plainIfaces := run(false)
	instr, instrIfaces := run(true)
	if plain.ProbesSent != instr.ProbesSent || plain.Replies != instr.Replies ||
		plain.Elapsed != instr.Elapsed {
		t.Errorf("counters diverge with telemetry on: %+v vs %+v",
			plain.ProbesSent, instr.ProbesSent)
	}
	if plainIfaces != instrIfaces {
		t.Error("interface sets diverge with telemetry on")
	}
}

// TestBaselineTelemetry checks the trace_* and apd_* flows reach a
// facade registry.
func TestBaselineTelemetry(t *testing.T) {
	in := NewSmallInternet(2018)
	v := in.NewVantage("BASE-1")
	targets := telemetryTargets(in, t)
	if len(targets) > 40 {
		targets = targets[:40]
	}
	reg := NewTelemetry()
	seq := v.RunSequential(targets, SequentialOptions{Rate: 4000, MaxTTL: 16, Telemetry: reg})
	if n, _ := reg.Snapshot().Counter("trace_probes_sent_total"); n != seq.ProbesSent {
		t.Errorf("trace_probes_sent_total = %d, want %d", n, seq.ProbesSent)
	}
	aliases := v.DetectAliases(AliasCandidates(targets), AliasOptions{Telemetry: reg})
	if n, _ := reg.Snapshot().Counter("apd_probes_sent_total"); n != aliases.ProbesSent() {
		t.Errorf("apd_probes_sent_total = %d, want %d", n, aliases.ProbesSent())
	}
}

// TestServeTelemetry exercises the HTTP observability endpoint through
// the facade.
func TestServeTelemetry(t *testing.T) {
	reg := NewTelemetry()
	reg.Counter("yarrp_probes_sent_total").Add(7)
	addr, err := ServeTelemetry("127.0.0.1:0", reg)
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "yarrp_probes_sent_total 7") {
		t.Errorf("metrics output missing counter:\n%s", body)
	}
}
